"""EM-SCC: the whole-graph-contraction heuristic (Cosgaya-Lozano & Zeh [13]).

EM-SCC compresses the graph iteratively: partition the edge file into
memory-sized chunks, find the SCCs *inside* each chunk with an in-memory
algorithm, contract every non-trivial chunk-local SCC into a super-node,
rewrite the edge file through the contraction map, and repeat until the
whole graph fits in memory — then finish in memory.

The paper's critique, which this implementation deliberately preserves:

* **Case-1** — an SCC that straddles every chunk boundary is never detected
  inside a chunk, so no contraction happens;
* **Case-2** — a DAG has no SCCs at all, so nothing ever contracts;

in either case an iteration makes no progress while the graph still does
not fit, and the loop would run forever.  We detect a zero-contraction
iteration and raise :class:`~repro.exceptions.NonTermination` (the
benchmark harness reports it like the paper does: the algorithm "cannot
stop in all cases").

The contraction map for each iteration is chunk-local (each chunk fits in
memory, so its map does too); the cumulative original-node → super-node map
is maintained externally and composed with sorts and merge joins.
"""

from __future__ import annotations

from operator import itemgetter

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.constants import EDGE_RECORD_BYTES, NODE_RECORD_BYTES, SCC_RECORD_BYTES
from repro.core.result import SCCResult
from repro.exceptions import NonTermination
from repro.graph.digraph import DiGraph
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice
from repro.io.codecs import RecordStore, create_record_file, record_file_from_records
from repro.io.join import cogroup
from repro.io.memory import MemoryBudget
from repro.io.sort import KEY_DST_SRC, KEY_SRC_DST, external_sort_records, external_sort_stream
from repro.io.stats import IOSnapshot
from repro.memory_scc.tarjan import tarjan_scc
from repro.plan import (
    Dedupe,
    ExtPlan,
    Materialize,
    MergeJoin,
    MergePasses,
    PlanExecutor,
    Rewrite,
    Scan,
    SortRuns,
    TraceLedger,
)

__all__ = ["em_scc", "EMSCCOutput", "build_em_iteration_plan"]

_GRAPH_BYTES_PER_EDGE = EDGE_RECORD_BYTES
_WORKING_FACTOR = 4
"""In-memory expansion factor for adjacency structures over raw records:
the chunk size is ``M / (edge bytes * factor)`` edges."""


@dataclass
class EMSCCOutput:
    """Result bundle of an EM-SCC run (when it terminates)."""

    result: SCCResult
    io: IOSnapshot
    wall_seconds: float
    iterations: int
    contractions: int


def _graph_fits(num_nodes: int, num_edges: int, memory: MemoryBudget) -> bool:
    """EM-SCC's stop condition: the *whole graph* must fit in memory
    (stricter than Ext-SCC's nodes-only condition — the paper's point)."""
    footprint = _WORKING_FACTOR * (
        num_edges * EDGE_RECORD_BYTES + num_nodes * NODE_RECORD_BYTES
    )
    return footprint <= memory.nbytes


def _rewrite_endpoint(
    device: BlockDevice,
    edges: RecordStore,
    mapping: RecordStore,
    memory: MemoryBudget,
    endpoint: int,
) -> RecordStore:
    """Map one endpoint of every edge through a sorted (old, new) file.

    The by-endpoint sort streams straight into the rewrite co-scan; no
    sorted copy of the edge file is materialized.
    """
    sorted_edges = external_sort_stream(
        device, edges.scan(), EDGE_RECORD_BYTES, memory,
        key=(KEY_SRC_DST if endpoint == 0 else KEY_DST_SRC), sort_field=endpoint,
    )
    # The rewritten endpoint breaks the scan order, so no gap field.
    out = create_record_file(
        device, device.temp_name("emrw"), EDGE_RECORD_BYTES, sort_field=None
    )
    for _, edge_group, map_group in cogroup(
        sorted_edges, mapping.scan(), itemgetter(endpoint), itemgetter(0)
    ):
        new_id = map_group[0][1] if map_group else None
        for edge in edge_group:
            if new_id is None:
                out.append(edge)
            elif endpoint == 0:
                out.append((new_id, edge[1]))
            else:
                out.append((edge[0], new_id))
    out.close()
    return out


def build_em_iteration_plan(
    device: BlockDevice,
    current_edges: RecordStore,
    cumulative: RecordStore,
    memory: MemoryBudget,
    iteration: int,
    num_nodes: int,
    chunk_size: int,
    owns_edges: bool,
) -> ExtPlan:
    """Declare one EM-SCC compression pass as a plan.

    Six stages, same operation order as the pre-plan loop body.  The
    edge-file-sized operators carry cost specs (the two endpoint-rewrite
    sorts and the map sort are streamed, so they are declared ``fused``);
    the pair- and map-sized operators are data-dependent and stay
    unpriced.  The final stage returns
    ``(cleaned_edges, composed_map, contractions, nodes_removed)``.
    """
    e = current_edges.num_records
    n_map = cumulative.num_records
    t = iteration
    plan = ExtPlan(f"em-scc-{t}", phase=f"em-scc/iter-{t}")

    # -- stage 1: partition the edge file, contract chunk-local SCCs -------
    part_ops = [
        plan.add(Scan(f"E_{t}", records=e, record_size=EDGE_RECORD_BYTES,
                      cost=("scan", e, EDGE_RECORD_BYTES))),
        plan.add(Rewrite("chunk tarjan", inputs=(f"E_{t}",))),
        plan.add(Materialize("contraction pairs", inputs=("chunk tarjan",),
                             record_size=SCC_RECORD_BYTES)),
    ]

    def run_partition(ctx: dict):
        pairs = create_record_file(
            device, device.temp_name("empairs"), SCC_RECORD_BYTES, sort_field=None
        )
        contractions = 0
        chunk: List[Tuple[int, int]] = []

        def contract_chunk(chunk_edges_list: List[Tuple[int, int]]) -> int:
            found = 0
            graph = DiGraph(chunk_edges_list)
            labels = tarjan_scc(graph)
            for node, rep in labels.items():
                if node != rep:
                    pairs.append((node, rep))
                    found += 1
            return found

        for edge in current_edges.scan():
            if edge[0] == edge[1]:
                continue
            chunk.append(edge)
            if len(chunk) >= chunk_size:
                contractions += contract_chunk(chunk)
                chunk = []
        if chunk:
            contractions += contract_chunk(chunk)
        pairs.close()
        if contractions == 0:
            pairs.delete()
            raise NonTermination(
                f"EM-SCC made no progress in iteration {t} "
                f"({num_nodes} nodes, {current_edges.num_records} edges still "
                "exceed memory): the paper's Case-1/Case-2"
            )
        return pairs, contractions

    plan.stage("partition-contract", part_ops, run_partition)

    # -- stage 2: first-wins dedupe of the chunk maps ----------------------
    dedupe_ops = [
        plan.add(SortRuns("pairs runs", inputs=("contraction pairs",),
                          record_size=SCC_RECORD_BYTES, fused=True)),
        plan.add(MergePasses("pairs merge", inputs=("pairs runs",),
                             record_size=SCC_RECORD_BYTES, fused=True)),
        plan.add(Dedupe("first-wins map", inputs=("pairs merge",),
                        record_size=SCC_RECORD_BYTES)),
        plan.add(Materialize(f"M_{t}", inputs=("first-wins map",),
                             record_size=SCC_RECORD_BYTES)),
    ]

    def run_dedupe(ctx: dict) -> RecordStore:
        pairs, _ = ctx["partition-contract"]
        # Chunk maps may disagree when a node is contracted in two chunks;
        # resolving that needs transitive information the heuristic does
        # not have, so like [13] we keep the first mapping per node.  The
        # sort streams into the first-wins dedupe scan.
        mapping = external_sort_stream(
            device, pairs.scan(), SCC_RECORD_BYTES, memory, unique=True
        )
        deduped = create_record_file(
            device, device.temp_name("emmap1"), SCC_RECORD_BYTES, sort_field=0
        )
        last_node = None
        for node, rep in mapping:
            if node != last_node:
                deduped.append((node, rep))
                last_node = node
        deduped.close()
        pairs.delete()
        return deduped

    plan.stage("dedupe-map", dedupe_ops, run_dedupe)

    # -- stages 3+4: rewrite both endpoints through the mapping ------------
    def rewrite_stage(endpoint: int) -> None:
        side = "src" if endpoint == 0 else "dst"
        prev = f"E_{t}" if endpoint == 0 else f"E_{t} src-rewritten"
        ops = [
            plan.add(SortRuns(f"by-{side} runs", inputs=(prev,), records=e,
                              record_size=EDGE_RECORD_BYTES,
                              cost=("sort-runs", e, EDGE_RECORD_BYTES),
                              group=f"rw-{side}", fused=True)),
            plan.add(MergePasses(f"by-{side} merge", inputs=(f"by-{side} runs",),
                                 records=e, record_size=EDGE_RECORD_BYTES,
                                 cost=("merge-passes", e, EDGE_RECORD_BYTES),
                                 group=f"rw-{side}", fused=True)),
            plan.add(MergeJoin(f"map {side}", inputs=(f"by-{side} merge", f"M_{t}"),
                               records=e, record_size=EDGE_RECORD_BYTES)),
            plan.add(Materialize(f"E_{t} {side}-rewritten", inputs=(f"map {side}",),
                                 records=e, record_size=EDGE_RECORD_BYTES,
                                 cost=("write", e, EDGE_RECORD_BYTES))),
        ]

        def run_rewrite(ctx: dict) -> RecordStore:
            deduped = ctx["dedupe-map"]
            if endpoint == 0:
                rewritten = _rewrite_endpoint(
                    device, current_edges, deduped, memory, endpoint=0
                )
                if owns_edges:
                    current_edges.delete()
            else:
                prev_store = ctx["rewrite-src"]
                rewritten = _rewrite_endpoint(
                    device, prev_store, deduped, memory, endpoint=1
                )
                prev_store.delete()
            return rewritten

        plan.stage(f"rewrite-{side}", ops, run_rewrite)

    rewrite_stage(0)
    rewrite_stage(1)

    # -- stage 5: drop self-loops + duplicates from the contraction --------
    clean_ops = [
        plan.add(Dedupe("drop loops+dups", inputs=(f"E_{t} dst-rewritten",),
                        records=e, record_size=EDGE_RECORD_BYTES)),
        plan.add(SortRuns("clean runs", inputs=("drop loops+dups",), records=e,
                          record_size=EDGE_RECORD_BYTES,
                          cost=("sort-runs", e, EDGE_RECORD_BYTES),
                          group="clean")),
        plan.add(MergePasses("clean merge", inputs=("clean runs",), records=e,
                             record_size=EDGE_RECORD_BYTES,
                             cost=("merge-passes", e, EDGE_RECORD_BYTES),
                             group="clean")),
        plan.add(Materialize(f"E_{t + 1}", inputs=("clean merge",), records=e,
                             record_size=EDGE_RECORD_BYTES,
                             cost=("sort-final", e, EDGE_RECORD_BYTES),
                             group="clean")),
    ]

    def run_clean(ctx: dict) -> RecordStore:
        rewritten2 = ctx["rewrite-dst"]
        cleaned = external_sort_records(
            device,
            ((u, v) for u, v in rewritten2.scan() if u != v),
            EDGE_RECORD_BYTES,
            memory,
            unique=True,
        )
        rewritten2.delete()
        return cleaned

    plan.stage("clean-edges", clean_ops, run_clean)

    # -- stage 6: compose the cumulative map with this contraction ---------
    compose_ops = [
        plan.add(Scan("map", records=n_map, record_size=SCC_RECORD_BYTES)),
        plan.add(SortRuns("map by-current runs", inputs=("map",),
                          records=n_map, record_size=SCC_RECORD_BYTES,
                          cost=("sort-runs", n_map, SCC_RECORD_BYTES),
                          group="compose", fused=True)),
        plan.add(MergePasses("map by-current merge",
                             inputs=("map by-current runs",), records=n_map,
                             record_size=SCC_RECORD_BYTES,
                             cost=("merge-passes", n_map, SCC_RECORD_BYTES),
                             group="compose", fused=True)),
        plan.add(MergeJoin("compose", inputs=("map by-current merge", f"M_{t}"),
                           records=n_map, record_size=SCC_RECORD_BYTES)),
        plan.add(Materialize(f"map_{t}", inputs=("compose",), records=n_map,
                             record_size=SCC_RECORD_BYTES,
                             cost=("write", n_map, SCC_RECORD_BYTES))),
    ]

    def run_compose(ctx: dict):
        _, contractions = ctx["partition-contract"]
        deduped = ctx["dedupe-map"]
        cleaned = ctx["clean-edges"]
        nodes_removed = sum(1 for _ in deduped.scan())
        # The by-current sort streams into the composition co-scan.
        by_current = external_sort_stream(
            device, cumulative.scan(), SCC_RECORD_BYTES, memory,
            key=KEY_DST_SRC, sort_field=1,
        )
        composed = create_record_file(
            device, device.temp_name("emmap2"), SCC_RECORD_BYTES, sort_field=None
        )
        for _, cum_group, map_group in cogroup(
            by_current, deduped.scan(), itemgetter(1), itemgetter(0)
        ):
            new_id = map_group[0][1] if map_group else None
            for orig, current in cum_group:
                composed.append((orig, new_id if new_id is not None else current))
        composed.close()
        cumulative.delete()
        deduped.delete()
        return cleaned, composed, contractions, nodes_removed

    plan.stage("compose-map", compose_ops, run_compose)
    return plan


def em_scc(
    device: BlockDevice,
    edges: EdgeFile,
    nodes: NodeFile,
    memory: MemoryBudget,
    max_iterations: int = 1000,
    trace: Optional[TraceLedger] = None,
) -> EMSCCOutput:
    """Run EM-SCC; raises :class:`NonTermination` on a no-progress pass.

    Args:
        device: the simulated disk.
        edges: the edge file.
        nodes: the node file (sorted unique ids).
        memory: the budget ``M``.
        max_iterations: hard cap (the non-termination detector normally
            fires long before).
        trace: optional ledger collecting one span per executed plan stage
            (predicted vs. measured I/Os), as for Ext-SCC.

    Returns:
        An :class:`EMSCCOutput` when the heuristic converges.
    """
    # Local import: the planner module imports core.ext_scc, which has no
    # path back here, but keeping the import lazy mirrors the other plan
    # builders and keeps baselines importable without analysis.
    from repro.analysis.cost_model import CostModel
    from repro.analysis.planner import predict_plan

    start_time = time.perf_counter()
    run_start = device.stats.snapshot()
    chunk_size = max(16, memory.nbytes // (_GRAPH_BYTES_PER_EDGE * _WORKING_FACTOR))
    model = CostModel(device.block_size, memory.nbytes)
    executor = PlanExecutor(device, trace=trace)

    # Cumulative map (original -> current super-node), kept sorted by the
    # *current* id so it can be composed with each iteration's contraction.
    cumulative = record_file_from_records(
        device,
        device.temp_name("emmap"),
        ((v, v) for v in nodes.scan()),
        SCC_RECORD_BYTES,
        sort_field=0,
    )
    current_edges: RecordStore = edges.file
    owns_edges = False
    num_nodes = nodes.num_nodes
    iterations = 0
    total_contractions = 0

    while not _graph_fits(num_nodes, current_edges.num_records, memory):
        iterations += 1
        if iterations > max_iterations:
            raise NonTermination(f"EM-SCC exceeded {max_iterations} iterations")
        plan = build_em_iteration_plan(
            device, current_edges, cumulative, memory, iterations,
            num_nodes, chunk_size, owns_edges,
        )
        predict_plan(plan, model)
        cleaned, composed, contractions, nodes_removed = executor.execute(plan)
        total_contractions += contractions
        current_edges = cleaned
        owns_edges = True
        num_nodes -= nodes_removed
        cumulative = composed

    # --- the remainder fits: finish in memory.
    final_graph = DiGraph(current_edges.scan())
    final_labels = tarjan_scc(final_graph)
    if owns_edges:
        current_edges.delete()

    by_current = external_sort_records(
        device, cumulative.scan(), SCC_RECORD_BYTES, memory,
        key=KEY_DST_SRC, sort_field=1,
    )
    cumulative.delete()
    labels: Dict[int, int] = {}
    for orig, current in by_current.scan():
        labels[orig] = final_labels.get(current, current)
    by_current.delete()

    return EMSCCOutput(
        result=SCCResult(labels),
        io=device.stats.snapshot() - run_start,
        wall_seconds=time.perf_counter() - start_time,
        iterations=iterations,
        contractions=total_contractions,
    )
