"""External-memory baselines the paper compares against: the EM-SCC
contraction heuristic [13] and DFS-SCC, external Kosaraju over the external
DFS of [8] with its buffered repository tree."""

from repro.baselines.brt import BufferedRepositoryTree
from repro.baselines.dfs_scc import DFSSCCOutput, dfs_scc
from repro.baselines.em_scc import EMSCCOutput, em_scc
from repro.baselines.external_bfs import external_bfs_levels, external_reachable
from repro.baselines.node_table import NodeTable

__all__ = [
    "BufferedRepositoryTree",
    "NodeTable",
    "external_bfs_levels",
    "external_reachable",
    "dfs_scc",
    "DFSSCCOutput",
    "em_scc",
    "EMSCCOutput",
]
