"""External node table with an LRU block cache (DFS-SCC's on-disk state).

The external DFS must consult and update per-node state (adjacency offsets,
visited flags) for nodes scattered over the id space — the access pattern
that makes it random-I/O bound.  :class:`NodeTable` stores fixed-width node
records sorted by id in an :class:`ExternalFile`, found by binary search
over block-leading keys, through a :class:`~repro.io.cache.BufferPool`
sized from the memory budget.  Cache misses are charged as random reads;
dirty evictions as random writes.

The query service reads the same structure very differently: a *batch* of
point lookups is deduplicated, sorted, mapped to blocks through the fence
keys, and answered with one read per distinct block in ascending order —
N lookups for O(sorted scan) block reads instead of N seeks
(:meth:`NodeTable.get_batch`).  Batch reads bypass the buffer pool (they
are scan-shaped and would evict the hot point-lookup working set).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import StorageError
from repro.io.blocks import BlockDevice
from repro.io.cache import BufferPool
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget

__all__ = ["NodeTable"]

Record = Tuple[int, ...]


class NodeTable:
    """Sorted fixed-width node records with cached random access.

    Args:
        device: the simulated disk.
        records: node records, *sorted by node id* (field 0), one per node.
        record_size: record width in bytes.
        memory: budget used to size the cache (half of it, in blocks).
        name: file name on the device.
    """

    def __init__(
        self,
        device: BlockDevice,
        records: Iterable[Record],
        record_size: int,
        memory: MemoryBudget,
        name: str = "node-table",
    ) -> None:
        self.device = device
        self.file = ExternalFile.from_records(device, name, records, record_size)
        self._attach(memory)

    @classmethod
    def open(
        cls,
        device: BlockDevice,
        name: str,
        memory: MemoryBudget,
        fence: Optional[Sequence[int]] = None,
    ) -> "NodeTable":
        """Attach to an already-written table file (no writes, no I/O).

        ``fence`` prefills the block-leading-key array (persisted device
        metadata keeps it around — one id per block, far below M), so
        lookups never pay block reads just to *locate* a block.  Without
        it the fence is learned lazily, as on a freshly built table.
        """
        table = cls.__new__(cls)
        table.device = device
        table.file = ExternalFile.open(device, name)
        table._attach(memory, fence=fence)
        return table

    def _attach(
        self, memory: MemoryBudget, fence: Optional[Sequence[int]] = None
    ) -> None:
        self._capacity = self.file._file.block_capacity
        cache_blocks = max(1, memory.block_capacity(self.device.block_size) // 2)
        self._pool = BufferPool(self.file, cache_blocks)
        # Block-leading node ids, learned lazily (a real deployment keeps
        # this fence-key array in memory: one id per block, far below M).
        self._fence: List[Optional[int]] = [None] * self.file.num_blocks
        if fence is not None:
            if len(fence) != self.file.num_blocks:
                raise StorageError(
                    f"fence of {len(fence)} keys does not match "
                    f"{self.file.num_blocks} blocks of {self.file.name!r}"
                )
            self._fence = list(fence)
        # Block reads performed by get_batch (they bypass the pool, so the
        # pool's hit/miss counters never see them).
        self.batch_block_reads = 0
        self.batch_lookups = 0

    # -- lookup -----------------------------------------------------------

    def _load_block(self, index: int) -> List[Record]:
        block = self._pool.get_block(index)
        if self._fence[index] is None:
            self._fence[index] = block[0][0] if block else None
        return block

    def _fence_key(self, index: int) -> int:
        key = self._fence[index]
        if key is None:
            block = self._load_block(index)
            key = block[0][0] if block else 0
        return key

    def _locate_block(self, node: int) -> int:
        """Index of the block whose range contains ``node``."""
        lo, hi = 0, self.file.num_blocks - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._fence_key(mid) <= node:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def block_of(self, node: int) -> int:
        """Public block locator (the batch engine plans reads with it)."""
        return self._locate_block(node)

    @staticmethod
    def _search(block: Sequence[Record], node: int) -> Optional[Record]:
        lo, hi = 0, len(block)
        while lo < hi:
            mid = (lo + hi) // 2
            if block[mid][0] < node:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(block) and block[lo][0] == node:
            return block[lo]
        return None

    def get(self, node: int) -> Optional[Record]:
        """The record for ``node``, or None when absent."""
        if self.file.num_blocks == 0:
            return None
        return self._search(self._load_block(self._locate_block(node)), node)

    def get_batch(self, nodes: Iterable[int]) -> Dict[int, Optional[Record]]:
        """Answer many point lookups with one read per distinct block.

        The nodes are deduplicated and grouped by block; the needed
        blocks are then read once each in ascending order — a (partial)
        sorted scan charged as sequential reads when more than one block
        is touched, a single seek otherwise.  Reads bypass the buffer
        pool: a batch is scan-shaped, and caching it would evict the
        point-lookup working set (the pool stays scan-resistant).
        """
        unique = sorted(set(nodes))
        self.batch_lookups += len(unique)
        results: Dict[int, Optional[Record]] = {}
        if self.file.num_blocks == 0:
            return {node: None for node in unique}
        by_block: Dict[int, List[int]] = {}
        for node in unique:
            by_block.setdefault(self._locate_block(node), []).append(node)
        sequential = len(by_block) > 1
        for index in sorted(by_block):
            block = self.device.read_block(
                self.file._file, index, sequential=sequential
            )
            self.batch_block_reads += 1
            for node in by_block[index]:
                results[node] = self._search(block, node)
        return results

    def update(self, node: int, record: Record) -> None:
        """Replace ``node``'s record (marks the block dirty)."""
        if record[0] != node:
            raise StorageError("record key must equal the node id")
        index = self._locate_block(node)
        block = self._load_block(index)
        for position, existing in enumerate(block):
            if existing[0] == node:
                block[position] = record
                self._pool.mark_dirty(index)
                return
        raise StorageError(f"node {node} not present in table")

    # -- management -------------------------------------------------------

    def flush(self) -> None:
        """Write back every dirty cached block (random writes)."""
        self._pool.flush()

    def scan(self):
        """Sequential scan of all records (flushes dirty blocks first)."""
        self.flush()
        return self.file.scan()

    def delete(self) -> None:
        """Remove the table's file from the device."""
        self._pool.drop()
        self.file.delete()

    @property
    def cache_hits(self) -> int:
        """Buffer-pool hits of the point-lookup path."""
        return self._pool.hits

    @property
    def cache_misses(self) -> int:
        """Buffer-pool misses of the point-lookup path."""
        return self._pool.misses

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of block accesses served from the buffer pool.

        Zero-lookup safe: 0.0 before any access, never a division error.
        """
        return self._pool.hit_rate
