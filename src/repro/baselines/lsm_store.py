"""LSM-style message store — the BRT's database-flavored alternative.

The external DFS needs a key→values store with buffered ``insert`` and
destructive ``extract_all``.  [8] uses a buffered repository tree; Kumar &
Schwabe [17] used tournament trees for the same role.  This module
implements the third classic realization, a log-structured merge store:

* ``insert`` appends to an in-memory memtable; a full memtable is flushed
  as a key-sorted *run* (sequential writes), and when too many runs
  accumulate they are compacted into one (sequential merge);
* ``extract_all(key)`` drains the memtable entry plus, for every run whose
  fence keys admit the key, a binary-searched block probe (random reads)
  with an in-place rewrite of the emptied slots (random writes).

Same interface as :class:`~repro.baselines.brt.BufferedRepositoryTree`, so
:func:`~repro.baselines.dfs_scc.dfs_scc` accepts either through its
``message_store`` parameter — and ``benchmarks/test_message_stores.py``
races the two I/O profiles.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.sort import merge_runs

__all__ = ["LSMMessageStore"]

Item = Tuple[int, int]

_RECORD_BYTES = 8


class _Run:
    """One sorted on-disk run plus its in-memory fence keys."""

    def __init__(self, file: ExternalFile, fences: List[int]) -> None:
        self.file = file
        # First key of every block: one int per block, the classic
        # in-memory index allowance.  Fences go stale as extractions
        # shrink blocks, but a stale fence range is a superset of the
        # block's keys, so probes never miss.
        self.fences = fences

    @classmethod
    def from_items(cls, device: BlockDevice, name: str,
                   items: List[Item]) -> "_Run":
        file = ExternalFile.from_records(device, name, items, _RECORD_BYTES)
        capacity = file._file.block_capacity
        fences = [items[index * capacity][0] for index in range(file.num_blocks)]
        return cls(file, fences)

    def candidate_blocks(self, key: int) -> List[int]:
        """Blocks that may hold ``key`` (fence-key range check)."""
        out = []
        for index, first in enumerate(self.fences):
            last_key = (
                self.fences[index + 1]
                if index + 1 < len(self.fences)
                else None
            )
            if first <= key and (last_key is None or key <= last_key):
                out.append(index)
        return out


class LSMMessageStore:
    """A log-structured key→values store over the simulated disk.

    Args:
        device: the simulated disk.
        key_space: exclusive upper bound on keys (interface parity with the
            BRT; only validated).
        memtable_entries: memtable flush threshold (default: one block).
        max_runs: compaction trigger.
        name: file-name prefix.
    """

    def __init__(
        self,
        device: BlockDevice,
        key_space: int,
        memtable_entries: int = 0,
        max_runs: int = 6,
        name: str = "lsm",
    ) -> None:
        self.device = device
        self.key_space = max(1, key_space)
        self.max_runs = max(2, max_runs)
        self.name = name
        self._memtable: Dict[int, List[int]] = {}
        self._memtable_size = 0
        self._memtable_capacity = (
            memtable_entries
            if memtable_entries > 0
            else max(8, device.block_size // _RECORD_BYTES)
        )
        self._runs: List[_Run] = []
        self._counter = 0

    # -- writing -----------------------------------------------------------

    def insert(self, key: int, value: int) -> None:
        """Buffer ``(key, value)``; surfaces on ``extract_all(key)``."""
        if not 0 <= key < self.key_space:
            raise ValueError(f"key {key} outside key space [0, {self.key_space})")
        self._memtable.setdefault(key, []).append(value)
        self._memtable_size += 1
        if self._memtable_size >= self._memtable_capacity:
            self._flush_memtable()

    def _flush_memtable(self) -> None:
        if not self._memtable:
            return
        items = [
            (key, value)
            for key in sorted(self._memtable)
            for value in self._memtable[key]
        ]
        self._memtable.clear()
        self._memtable_size = 0
        self._counter += 1
        self._runs.append(
            _Run.from_items(self.device, f"{self.name}.run.{self._counter}", items)
        )
        if len(self._runs) > self.max_runs:
            self._compact()

    def _compact(self) -> None:
        """Merge every run into one (sequential read + write)."""
        merged = list(merge_runs(run.file.scan() for run in self._runs))
        for run in self._runs:
            run.file.delete()
        self._runs = []
        if merged:
            self._counter += 1
            self._runs.append(
                _Run.from_items(
                    self.device, f"{self.name}.run.{self._counter}", merged
                )
            )

    # -- reading ---------------------------------------------------------------

    def extract_all(self, key: int) -> List[int]:
        """Remove and return every buffered value for ``key``."""
        extracted = list(self._memtable.pop(key, []))
        self._memtable_size -= len(extracted)
        for run in self._runs:
            for index in run.candidate_blocks(key):
                block = list(run.file.read_block_random(index))
                kept = [item for item in block if item[0] != key]
                if len(kept) != len(block):
                    extracted.extend(v for k, v in block if k == key)
                    self.device.overwrite_block(
                        run.file._file, index, kept, sequential=False
                    )
        return extracted

    @property
    def num_runs(self) -> int:
        """On-disk runs currently live."""
        return len(self._runs)

    def drop(self) -> None:
        """Delete every run file from the device."""
        for run in self._runs:
            run.file.delete()
        self._runs = []
        self._memtable.clear()
        self._memtable_size = 0
