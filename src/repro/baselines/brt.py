"""Buffered Repository Tree (Buchsbaum et al. [8]).

An external-memory structure over an ordered key space supporting

* ``insert(key, value)`` — amortized O((1/B) log(N/B)) I/Os, and
* ``extract_all(key)``   — O(log(N/B)) I/Os per call,

used by the external DFS to deliver "this edge's head has been visited"
messages to the tail node lazily.

Implementation: an implicit binary tree over key ranges.  Every tree node
owns a disk buffer (a list of append-only file fragments of ``(key, value)``
records).  Inserts go through a one-block in-memory staging buffer for the
root; when a node's buffer exceeds ``buffer_blocks`` blocks it is *flushed*:
its records are read back and moved into the two children's buffers (all
sequential).  ``extract_all`` walks the root-to-leaf path of the key and
rewrites each buffer on the path without the extracted records — the random
reads/writes the paper blames for DFS-SCC's impracticality show up here and
are charged to the ledger.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile

__all__ = ["BufferedRepositoryTree"]

Item = Tuple[int, int]

_RECORD_BYTES = 8


class _NodeBuffer:
    """A tree node's disk buffer: append-only file fragments."""

    def __init__(self) -> None:
        self.fragments: List[ExternalFile] = []

    @property
    def num_blocks(self) -> int:
        return sum(f.num_blocks for f in self.fragments)

    def drop(self) -> None:
        for fragment in self.fragments:
            fragment.delete()
        self.fragments.clear()


class BufferedRepositoryTree:
    """A BRT over integer keys ``0 .. key_space - 1``.

    Args:
        device: the simulated disk.
        key_space: exclusive upper bound on keys.
        buffer_blocks: disk-buffer size (in blocks) that triggers a flush
            toward the children.
        name: file-name prefix on the device.
    """

    def __init__(
        self,
        device: BlockDevice,
        key_space: int,
        buffer_blocks: int = 4,
        name: str = "brt",
    ) -> None:
        self.device = device
        self.key_space = max(1, key_space)
        self.buffer_blocks = max(1, buffer_blocks)
        self.name = name
        block_capacity = device.block_size // _RECORD_BYTES
        # Leaves cover about one block's worth of keys each.
        self._leaf_span = max(1, block_capacity)
        self._depth = 0
        span = self.key_space
        while span > self._leaf_span:
            span = (span + 1) // 2
            self._depth += 1
        self._staging: List[Item] = []  # the root's in-memory block
        self._staging_capacity = block_capacity
        self._buffers: Dict[Tuple[int, int], _NodeBuffer] = {}
        self._counter = 0

    # -- tree geometry -------------------------------------------------------

    def _node_range(self, depth: int, idx: int) -> Tuple[int, int]:
        """Key range [lo, hi) covered by tree node (depth, idx)."""
        width = (self.key_space + (1 << depth) - 1) >> depth
        lo = idx * width
        return lo, min(self.key_space, lo + width)

    def _child_for(self, depth: int, idx: int, key: int) -> int:
        """Index of the child of (depth, idx) whose range contains ``key``."""
        lo, hi = self._node_range(depth + 1, idx * 2)
        return idx * 2 if lo <= key < hi else idx * 2 + 1

    def _path(self, key: int):
        """Tree nodes from the root to ``key``'s leaf."""
        idx = 0
        for depth in range(self._depth + 1):
            yield depth, idx
            if depth < self._depth:
                idx = self._child_for(depth, idx, key)

    # -- buffer management -----------------------------------------------------

    def _new_fragment(self, node: Tuple[int, int], items: List[Item]) -> None:
        if not items:
            return
        self._counter += 1
        fragment = ExternalFile.from_records(
            self.device,
            f"{self.name}.{node[0]}.{node[1]}.{self._counter}",
            items,
            _RECORD_BYTES,
        )
        buffer = self._buffers.setdefault(node, _NodeBuffer())
        buffer.fragments.append(fragment)
        if node[0] < self._depth and buffer.num_blocks > self.buffer_blocks:
            self._flush(node)

    def _flush(self, node: Tuple[int, int]) -> None:
        """Push a full buffer's records down to the two children."""
        depth, idx = node
        buffer = self._buffers.pop(node)
        left: List[Item] = []
        right: List[Item] = []
        left_lo, left_hi = self._node_range(depth + 1, idx * 2)
        for fragment in buffer.fragments:
            for key, value in fragment.scan():
                if left_lo <= key < left_hi:
                    left.append((key, value))
                else:
                    right.append((key, value))
        buffer.drop()
        self._new_fragment((depth + 1, idx * 2), left)
        self._new_fragment((depth + 1, idx * 2 + 1), right)

    # -- public API --------------------------------------------------------------

    def insert(self, key: int, value: int) -> None:
        """Buffer ``(key, value)``; it will surface on ``extract_all(key)``."""
        if not 0 <= key < self.key_space:
            raise ValueError(f"key {key} outside key space [0, {self.key_space})")
        self._staging.append((key, value))
        if len(self._staging) >= self._staging_capacity:
            items, self._staging = self._staging, []
            self._new_fragment((0, 0), items)

    def extract_all(self, key: int) -> List[int]:
        """Remove and return every buffered value for ``key``.

        Reads and rewrites the buffers on the root-to-leaf path of ``key``
        (random I/O), exactly the operation [8] charges O(log(N/B)) for.
        """
        extracted: List[int] = []
        keep_staging: List[Item] = []
        for k, v in self._staging:
            if k == key:
                extracted.append(v)
            else:
                keep_staging.append((k, v))
        self._staging = keep_staging

        for node in self._path(key):
            buffer = self._buffers.get(node)
            if buffer is None:
                continue
            kept: List[Item] = []
            found = False
            for fragment in buffer.fragments:
                for index in range(fragment.num_blocks):
                    for k, v in fragment.read_block_random(index):
                        if k == key:
                            extracted.append(v)
                            found = True
                        else:
                            kept.append((k, v))
            if found:
                self._buffers.pop(node)
                buffer.drop()
                self._new_fragment(node, kept)
        return extracted

    def drop(self) -> None:
        """Delete every buffer file from the device."""
        for buffer in self._buffers.values():
            buffer.drop()
        self._buffers.clear()
        self._staging.clear()
