"""DFS-SCC: external Kosaraju–Sharir via external DFS (Buchsbaum et al. [8]).

Algorithm 1 of the paper: an external DFS of ``G`` yields a postorder; a
second external DFS of the transpose, restarted in decreasing postorder,
yields one SCC per DFS tree.  The external DFS follows [8]:

* per-node state (adjacency extent, visited flag) lives in a
  :class:`~repro.baselines.node_table.NodeTable` on disk, reached through a
  bounded LRU cache — every cache miss is a *random* read/write;
* adjacency lists are fetched block-by-block with random reads as the DFS
  jumps around the graph;
* when a node ``w`` is visited, a "delete w" message is inserted into a
  :class:`~repro.baselines.brt.BufferedRepositoryTree` keyed by each
  in-neighbor of ``w``; when the DFS resumes a node it extracts its pending
  messages (O(log) random I/Os) instead of re-checking children — the [8]
  mechanism.

Known simplifications versus a production [8] implementation, all noted in
DESIGN.md: the DFS stack and the per-frame deletion sets are held in memory
(their I/O is lower-order, so the ledger *under*-counts DFS-SCC — i.e. the
comparison is conservative in DFS-SCC's favor), and leaf buffers in the BRT
are rewritten wholesale rather than amortized.  The profile the paper plots
— I/O dominated by random accesses, growing with ``|V|`` — is preserved.
"""

from __future__ import annotations

from operator import itemgetter

import time
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.constants import NODE_RECORD_BYTES, SCC_RECORD_BYTES
from repro.core.result import SCCResult
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.baselines.brt import BufferedRepositoryTree
from repro.baselines.node_table import NodeTable
from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.join import cogroup
from repro.io.memory import MemoryBudget
from repro.io.sort import external_sort_records
from repro.io.stats import IOSnapshot

__all__ = ["dfs_scc", "DFSSCCOutput"]

_TABLE_RECORD_BYTES = 16  # (node, adj_start, adj_count, visited)


@dataclass
class DFSSCCOutput:
    """Result bundle of a DFS-SCC run."""

    result: SCCResult
    io: IOSnapshot
    wall_seconds: float
    brt_messages: int = 0


class _Adjacency:
    """An adjacency store: targets sorted by source + a node table."""

    def __init__(
        self,
        device: BlockDevice,
        edges: EdgeFile,
        nodes: NodeFile,
        memory: MemoryBudget,
        name: str,
        reverse: bool,
    ) -> None:
        key = (itemgetter(1, 0)) if reverse else None
        sorted_edges = external_sort_records(
            device, edges.scan(), 8, memory, key=key
        )
        self.targets = ExternalFile.create(device, f"{name}.adj", NODE_RECORD_BYTES)
        spill = ExternalFile.create(device, f"{name}.table.build", _TABLE_RECORD_BYTES)

        def source(e: Tuple[int, int]) -> int:
            return e[1] if reverse else e[0]

        def target(e: Tuple[int, int]) -> int:
            return e[0] if reverse else e[1]

        position = 0
        node_stream: Iterator[Tuple[int, ...]] = ((v,) for v in nodes.scan())
        for node, node_group, edge_group in cogroup(
            node_stream, sorted_edges.scan(), itemgetter(0), source
        ):
            if not node_group:
                continue  # edge endpoint outside the node file: ignore
            start = position
            for edge in edge_group:
                self.targets.append((target(edge),))
                position += 1
            spill.append((node, start, position - start, 0))
        self.targets.close()
        spill.close()
        sorted_edges.delete()
        self.table = NodeTable(
            device, spill.scan(), _TABLE_RECORD_BYTES, memory, name=f"{name}.table"
        )
        spill.delete()
        self._capacity = self.targets._file.block_capacity

    def read_targets(self, start: int, count: int, offset: int) -> Tuple[List[int], int]:
        """Targets from ``start+offset`` to the end of that disk block.

        Returns the targets and the new offset; one random block read.
        """
        position = start + offset
        block_index = position // self._capacity
        block = self.targets.read_block_random(block_index)
        block_end = (block_index + 1) * self._capacity
        end = min(start + count, block_end)
        targets = [block[p % self._capacity][0] for p in range(position, end)]
        return targets, end - start

    def neighbors(self, start: int, count: int) -> List[int]:
        """All targets of one node (random block reads)."""
        out: List[int] = []
        offset = 0
        while offset < count:
            chunk, offset = self.read_targets(start, count, offset)
            out.extend(chunk)
        return out

    def delete(self) -> None:
        self.targets.delete()
        self.table.delete()


class _Frame:
    """One external-DFS stack frame."""

    __slots__ = ("node", "start", "count", "offset", "buffer", "deleted")

    def __init__(self, node: int, start: int, count: int) -> None:
        self.node = node
        self.start = start
        self.count = count
        self.offset = 0
        self.buffer: List[int] = []
        self.deleted: Set[int] = set()


def _external_dfs(
    forward: _Adjacency,
    backward: _Adjacency,
    roots: Iterable[int],
    brt: BufferedRepositoryTree,
    on_visit,
    on_finish,
) -> int:
    """Generic external DFS over ``forward``, with [8]'s BRT mechanism.

    ``backward`` supplies in-neighbors for visited-message insertion.
    Returns the number of BRT messages inserted.
    """
    messages = 0

    def visit(node: int, record: Tuple[int, ...]) -> _Frame:
        nonlocal messages
        forward.table.update(node, (node, record[1], record[2], 1))
        rev_record = backward.table.get(node)
        if rev_record is not None and rev_record[2] > 0:
            for in_neighbor in backward.neighbors(rev_record[1], rev_record[2]):
                if in_neighbor != node:
                    brt.insert(in_neighbor, node)
                    messages += 1
        on_visit(node)
        return _Frame(node, record[1], record[2])

    for root in roots:
        record = forward.table.get(root)
        if record is None or record[3]:
            continue
        stack: List[_Frame] = [visit(root, record)]
        while stack:
            frame = stack[-1]
            frame.deleted.update(brt.extract_all(frame.node))
            child: Optional[int] = None
            while child is None:
                if not frame.buffer:
                    if frame.offset >= frame.count:
                        break
                    frame.buffer, frame.offset = forward.read_targets(
                        frame.start, frame.count, frame.offset
                    )
                candidate = frame.buffer.pop(0)
                if candidate == frame.node or candidate in frame.deleted:
                    continue
                child = candidate
            if child is None:
                on_finish(frame.node)
                stack.pop()
                continue
            child_record = forward.table.get(child)
            if child_record is None or child_record[3]:
                # Visited before this frame's messages could name it; the
                # BRT message is still in flight — skip directly.
                frame.deleted.add(child)
                continue
            stack.append(visit(child, child_record))
    return messages


def _make_message_store(kind: str, device: BlockDevice, key_space: int,
                        buffer_blocks: int, name: str):
    """Factory for the deleted-edge message store: ``"brt"`` or ``"lsm"``."""
    if kind == "brt":
        return BufferedRepositoryTree(device, key_space, buffer_blocks, name=name)
    if kind == "lsm":
        from repro.baselines.lsm_store import LSMMessageStore

        return LSMMessageStore(device, key_space, name=name)
    raise ValueError(f"unknown message store {kind!r}; choose 'brt' or 'lsm'")


def dfs_scc(
    device: BlockDevice,
    edges: EdgeFile,
    nodes: NodeFile,
    memory: MemoryBudget,
    brt_buffer_blocks: int = 4,
    message_store: str = "brt",
) -> DFSSCCOutput:
    """Compute all SCCs with external Kosaraju (Algorithm 1 / [8]).

    Args:
        device: the simulated disk (its I/O budget, if any, applies —
            exceeding it raises
            :class:`~repro.exceptions.IOBudgetExceeded`, reported as INF).
        edges: the edge file.
        nodes: the node file (sorted unique ids).
        memory: the budget ``M``.
        brt_buffer_blocks: BRT flush threshold.
        message_store: ``"brt"`` (the [8] structure, default) or ``"lsm"``
            (a log-structured alternative in the [17] role).

    Returns:
        A :class:`DFSSCCOutput` with the labeling and I/O counts.
    """
    start_time = time.perf_counter()
    run_start = device.stats.snapshot()
    max_id = 0
    for v in nodes.scan():
        max_id = v if v > max_id else max_id

    forward = _Adjacency(device, edges, nodes, memory, "dfs.fwd", reverse=False)
    backward = _Adjacency(device, edges, nodes, memory, "dfs.bwd", reverse=True)

    # Pass 1: postorder of G.
    postorder = ExternalFile.create(device, "dfs.postorder", NODE_RECORD_BYTES)
    brt1 = _make_message_store(message_store, device, max_id + 1,
                               brt_buffer_blocks, name="store1")
    messages = _external_dfs(
        forward,
        backward,
        nodes.scan(),
        brt1,
        on_visit=lambda node: None,
        on_finish=lambda node: postorder.append((node,)),
    )
    brt1.drop()
    postorder.close()

    # Pass 2: DFS of the transpose in decreasing postorder; each tree is an
    # SCC.  The roles of the two adjacency stores swap, and the transpose
    # table carries the fresh visited flags.
    labels = ExternalFile.create(device, "dfs.labels", SCC_RECORD_BYTES)
    brt2 = _make_message_store(message_store, device, max_id + 1,
                               brt_buffer_blocks, name="store2")
    current_root: List[int] = [0]

    def on_visit(node: int) -> None:
        labels.append((node, current_root[0]))

    def roots() -> Iterator[int]:
        for (node,) in postorder.scan_reverse():
            current_root[0] = node
            yield node

    messages += _external_dfs(
        backward, forward, roots(), brt2, on_visit=on_visit, on_finish=lambda n: None
    )
    brt2.drop()
    labels.close()

    result = SCCResult.from_pairs(labels.scan())
    labels.delete()
    postorder.delete()
    forward.delete()
    backward.delete()
    return DFSSCCOutput(
        result=result,
        io=device.stats.snapshot() - run_start,
        wall_seconds=time.perf_counter() - start_time,
        brt_messages=messages,
    )
