"""Exception hierarchy for the repro package.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class. The two subclasses that benchmark harnesses care about
are :class:`IOBudgetExceeded` (a run used more block I/Os than allowed, the
simulation analogue of the paper's 24-hour "INF" cutoff) and
:class:`NonTermination` (the EM-SCC baseline detected that it cannot make
progress, the paper's Case-1/Case-2).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class IOBudgetExceeded(ReproError):
    """Raised when a run exceeds its block-I/O budget.

    The paper reports runs that do not finish within 24 hours as ``INF``.
    In the simulated I/O model the equivalent cutoff is a cap on the total
    number of block I/Os; crossing it raises this exception, which the
    benchmark harness renders as ``INF``.
    """

    def __init__(self, used: int, budget: int) -> None:
        super().__init__(f"I/O budget exceeded: used {used} block I/Os, budget {budget}")
        self.used = used
        self.budget = budget


class NonTermination(ReproError):
    """Raised when an algorithm detects it cannot terminate.

    The EM-SCC baseline [13] contracts partition-local SCCs until the graph
    fits in memory; on DAG-like graphs or graphs whose SCCs straddle every
    partitioning (the paper's Case-2 and Case-1) no progress is possible and
    the loop would run forever.  We detect a full pass with no contraction
    and raise this instead.
    """


class InsufficientMemory(ReproError):
    """Raised when an algorithm's minimum memory requirement is not met.

    For example the semi-external solvers need ``c * |V|`` bytes plus one
    block; calling them with a smaller :class:`~repro.io.memory.MemoryBudget`
    raises this.
    """


class StorageError(ReproError):
    """Raised on misuse of the simulated block device (missing file, write
    after close, record wider than a block, ...)."""


class SimulatedCrash(ReproError):
    """Raised by a :class:`~repro.recovery.fault.FaultInjector` at its
    scheduled block-I/O ordinal or phase.

    A simulated power loss: the interrupted operation is *not* charged to
    the I/O ledger (the machine died before it completed), and with
    ``torn=True`` the interrupted write leaves a detectable half-written
    block behind.
    """

    def __init__(self, ordinal: int, phase: "str | None" = None) -> None:
        where = f" in phase {phase!r}" if phase else ""
        super().__init__(f"simulated crash at block I/O #{ordinal}{where}")
        self.ordinal = ordinal
        self.phase = phase


class CorruptBlockError(StorageError):
    """A block's content does not match its checksum (e.g. a torn write).

    Carries the file name and block index so recovery code can report —
    and discard — exactly the damaged region.
    """

    def __init__(self, name: str, index: int) -> None:
        super().__init__(f"block {index} of {name!r} fails its checksum")
        self.name = name
        self.index = index


class TransientIOError(StorageError):
    """A block operation failed transiently (the simulated ``EIO``).

    Raised by a :class:`~repro.recovery.fault.FaultSchedule` on a scheduled
    read or write; the operation succeeds when retried enough times.  The
    device's retry loop (governed by a
    :class:`~repro.recovery.policy.FaultPolicy`) absorbs these; user code
    only sees one if no policy is attached or after retries are exhausted
    (wrapped in :class:`RetryExhaustedError`).
    """

    def __init__(self, message: str, *, attempt: int = 0) -> None:
        super().__init__(message)
        self.attempt = attempt


class ChannelOutageError(TransientIOError):
    """A whole stripe channel of a :class:`~repro.io.parallel.StripedDevice`
    is down for a scheduled window.

    Reads from the channel can be served degraded from parity (when the
    device has a parity channel); writes are retried until the outage
    window expires.
    """

    def __init__(self, channel: int, *, attempt: int = 0) -> None:
        super().__init__(f"stripe channel {channel} is down", attempt=attempt)
        self.channel = channel


class RetryExhaustedError(StorageError):
    """A transient fault persisted past the :class:`FaultPolicy` budget.

    Carries the number of attempts made and the last underlying error so
    callers (and the CLI's exit-code mapping) can report exactly what was
    retried and why the policy gave up.  This is the fail-fast escalation
    point: a checkpointed run that sees this should resume from the last
    durable checkpoint rather than keep hammering the device.
    """

    def __init__(self, attempts: int, last_error: Exception, *, reason: str = "") -> None:
        why = f" ({reason})" if reason else ""
        super().__init__(
            f"transient fault persisted after {attempts} attempt(s){why}: {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error
        self.reason = reason


class WorkerCrashError(ReproError):
    """A worker executing a pool task died or hung mid-task.

    Raised inside the task by a scheduled worker fault (``worker-die`` /
    ``worker-hang``) or mapped from a real ``BrokenProcessPool``.  The
    :class:`~repro.io.parallel.WorkerPool` supervisor catches it and
    re-dispatches the task (tasks are pure, so replay is safe).
    """

    def __init__(self, kind: str, detail: str = "") -> None:
        extra = f": {detail}" if detail else ""
        super().__init__(f"worker {kind}{extra}")
        self.kind = kind


class CheckpointError(ReproError):
    """The checkpoint journal cannot be used for the requested resume.

    Raised when the journal's recorded run parameters (block size, memory
    budget, config fingerprint, input file) disagree with the caller's, or
    when not even the journal header's files survive validation.
    """


class UnknownNodeError(ReproError):
    """A query named a node the label store has never seen.

    The query service distinguishes this from a *reachability* miss: an
    unknown node is a client error (exit code / error response), while an
    unreachable pair is a normal ``False`` answer.
    """

    def __init__(self, node: int) -> None:
        super().__init__(f"node {node} is not in the label store")
        self.node = node


class UnknownSessionError(ReproError):
    """A service request referenced a session id that is not open."""

    def __init__(self, session_id: str) -> None:
        super().__init__(f"no open session {session_id!r}")
        self.session_id = session_id


class ServiceProtocolError(ReproError):
    """The query daemon rejected a malformed or unsupported request, or
    the thin client received a response it cannot interpret."""
