"""Exception hierarchy for the repro package.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class. The two subclasses that benchmark harnesses care about
are :class:`IOBudgetExceeded` (a run used more block I/Os than allowed, the
simulation analogue of the paper's 24-hour "INF" cutoff) and
:class:`NonTermination` (the EM-SCC baseline detected that it cannot make
progress, the paper's Case-1/Case-2).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class IOBudgetExceeded(ReproError):
    """Raised when a run exceeds its block-I/O budget.

    The paper reports runs that do not finish within 24 hours as ``INF``.
    In the simulated I/O model the equivalent cutoff is a cap on the total
    number of block I/Os; crossing it raises this exception, which the
    benchmark harness renders as ``INF``.
    """

    def __init__(self, used: int, budget: int) -> None:
        super().__init__(f"I/O budget exceeded: used {used} block I/Os, budget {budget}")
        self.used = used
        self.budget = budget


class NonTermination(ReproError):
    """Raised when an algorithm detects it cannot terminate.

    The EM-SCC baseline [13] contracts partition-local SCCs until the graph
    fits in memory; on DAG-like graphs or graphs whose SCCs straddle every
    partitioning (the paper's Case-2 and Case-1) no progress is possible and
    the loop would run forever.  We detect a full pass with no contraction
    and raise this instead.
    """


class InsufficientMemory(ReproError):
    """Raised when an algorithm's minimum memory requirement is not met.

    For example the semi-external solvers need ``c * |V|`` bytes plus one
    block; calling them with a smaller :class:`~repro.io.memory.MemoryBudget`
    raises this.
    """


class StorageError(ReproError):
    """Raised on misuse of the simulated block device (missing file, write
    after close, record wider than a block, ...)."""


class SimulatedCrash(ReproError):
    """Raised by a :class:`~repro.recovery.fault.FaultInjector` at its
    scheduled block-I/O ordinal or phase.

    A simulated power loss: the interrupted operation is *not* charged to
    the I/O ledger (the machine died before it completed), and with
    ``torn=True`` the interrupted write leaves a detectable half-written
    block behind.
    """

    def __init__(self, ordinal: int, phase: "str | None" = None) -> None:
        where = f" in phase {phase!r}" if phase else ""
        super().__init__(f"simulated crash at block I/O #{ordinal}{where}")
        self.ordinal = ordinal
        self.phase = phase


class CorruptBlockError(StorageError):
    """A block's content does not match its checksum (e.g. a torn write).

    Carries the file name and block index so recovery code can report —
    and discard — exactly the damaged region.
    """

    def __init__(self, name: str, index: int) -> None:
        super().__init__(f"block {index} of {name!r} fails its checksum")
        self.name = name
        self.index = index


class CheckpointError(ReproError):
    """The checkpoint journal cannot be used for the requested resume.

    Raised when the journal's recorded run parameters (block size, memory
    budget, config fingerprint, input file) disagree with the caller's, or
    when not even the journal header's files survive validation.
    """
