"""The query daemon: a JSON-lines TCP server over one label store.

Protocol: one JSON object per line, one response line per request.
Every request carries an ``"op"``; query ops also carry the ``"session"``
id returned by ``open-session``.  Responses are ``{"ok": true, ...}`` or
``{"ok": false, "error": <kind>, "message": <text>}``.

Ops:

* ``open-session`` ``{tenant, io_budget?}`` -> ``{session}``
* ``close-session`` ``{session}`` -> ``{ledger}``
* ``scc-label`` ``{session, nodes}`` -> ``{labels: {node: label|null}}``
* ``same-component`` ``{session, u, v}`` -> ``{same: bool}``
* ``reachable`` ``{session, u, v}`` -> ``{reachable: bool}``
* ``topo-order`` ``{session, nodes}`` ->
  ``{orders: {node: [component, layer]|null}}``
* ``session-stats`` ``{session}`` -> ``{ledger}``
* ``server-stats`` -> physical ledger + per-engine cache report +
  the session roll-up
* ``ping`` / ``shutdown``

Concurrency: a :class:`~socketserver.ThreadingTCPServer` thread per
connection; ``scc-label`` and ``topo-order`` lookups from concurrent
clients coalesce in the per-engine :class:`BatchCollector` epochs, so K
clients hammering the same epoch share block reads.
"""

from __future__ import annotations

import json
import socketserver
import threading
from typing import Optional

from repro.exceptions import (
    CorruptBlockError,
    IOBudgetExceeded,
    ReproError,
    ServiceProtocolError,
    StorageError,
    UnknownNodeError,
    UnknownSessionError,
)
from repro.service.batch import BatchCollector
from repro.service.session import SessionManager
from repro.service.store import LabelStore

__all__ = ["QueryDaemon"]

_ERROR_KINDS = (
    (IOBudgetExceeded, "throttled"),
    (UnknownSessionError, "unknown-session"),
    (UnknownNodeError, "unknown-node"),
    (CorruptBlockError, "corrupt-block"),
    (StorageError, "storage"),
    (ServiceProtocolError, "protocol"),
    (ReproError, "error"),
)


def _error_kind(exc: Exception) -> str:
    for cls, kind in _ERROR_KINDS:
        if isinstance(exc, cls):
            return kind
    return "internal"


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        daemon: "QueryDaemon" = self.server.daemon  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ServiceProtocolError("request must be a JSON object")
                response = daemon.handle_request(request)
            except Exception as exc:  # per-request isolation
                response = {
                    "ok": False,
                    "error": _error_kind(exc),
                    "message": str(exc),
                }
            self.wfile.write((json.dumps(response) + "\n").encode("ascii"))
            self.wfile.flush()
            if response.get("op") == "shutdown":
                daemon.request_shutdown()
                return


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class QueryDaemon:
    """Serves one :class:`LabelStore` to concurrent TCP clients.

    Args:
        store: an opened label store (the daemon closes it with
            :meth:`close` only if ``owns_store``).
        host / port: bind address; port 0 picks a free port (see
            :attr:`address`).
        epoch_seconds: batching epoch of the lookup collectors.
        max_batch: per-flush entry cap of the collectors.
    """

    def __init__(
        self,
        store: LabelStore,
        host: str = "127.0.0.1",
        port: int = 0,
        epoch_seconds: float = 0.005,
        max_batch: int = 4096,
        owns_store: bool = False,
    ) -> None:
        self.store = store
        self.sessions = SessionManager()
        self._owns_store = owns_store
        self.label_collector = BatchCollector(
            store.label_engine, epoch_seconds=epoch_seconds, max_batch=max_batch
        )
        self.topo_collector = BatchCollector(
            store.topo_engine, epoch_seconds=epoch_seconds, max_batch=max_batch
        )
        self._server = _Server((host, port), _Handler)
        self._server.daemon = self  # type: ignore[attr-defined]
        self.address = self._server.server_address
        self._serve_thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`request_shutdown`."""
        self._server.serve_forever(poll_interval=0.05)

    def start(self) -> None:
        """Serve on a background thread (tests and embedded use)."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="scc-serve", daemon=True
        )
        self._serve_thread.start()

    def request_shutdown(self) -> None:
        """Stop ``serve_forever`` from any thread (idempotent)."""
        threading.Thread(target=self._server.shutdown, daemon=True).start()

    def close(self) -> None:
        """Shut the server down and release every resource."""
        self._server.shutdown()
        self._server.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5)
        self.label_collector.close()
        self.topo_collector.close()
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "QueryDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch ----------------------------------------------------------

    def handle_request(self, request: dict) -> dict:
        op = request.get("op")
        handler = self._OPS.get(op)
        if handler is None:
            raise ServiceProtocolError(f"unsupported op {op!r}")
        return handler(self, request)

    @staticmethod
    def _nodes(request: dict) -> list:
        nodes = request.get("nodes")
        if not isinstance(nodes, list) or not all(
            isinstance(n, int) for n in nodes
        ):
            raise ServiceProtocolError('"nodes" must be a list of integers')
        return nodes

    def _session(self, request: dict):
        session_id = request.get("session")
        if not isinstance(session_id, str):
            raise ServiceProtocolError('"session" id required')
        return self.sessions.get(session_id)

    def _op_ping(self, request: dict) -> dict:
        return {"ok": True, "op": "ping"}

    def _op_open_session(self, request: dict) -> dict:
        tenant = request.get("tenant", "default")
        io_budget = request.get("io_budget")
        if io_budget is not None and (
            not isinstance(io_budget, int) or io_budget < 0
        ):
            raise ServiceProtocolError('"io_budget" must be a non-negative int')
        session = self.sessions.create(str(tenant), io_budget)
        return {"ok": True, "session": session.id}

    def _op_close_session(self, request: dict) -> dict:
        session = self._session(request)
        return {"ok": True, "ledger": self.sessions.close(session.id)}

    def _op_scc_label(self, request: dict) -> dict:
        session = self._session(request)
        labels = {}
        for node, record in self.label_collector.submit(
            session, self._nodes(request)
        ).items():
            labels[str(node)] = record[1] if record is not None else None
        return {"ok": True, "labels": labels}

    def _op_same_component(self, request: dict) -> dict:
        session = self._session(request)
        same = self.store.same_component(
            session, int(request["u"]), int(request["v"])
        )
        return {"ok": True, "same": same}

    def _op_reachable(self, request: dict) -> dict:
        session = self._session(request)
        reachable = self.store.reachable(
            session, int(request["u"]), int(request["v"])
        )
        return {"ok": True, "reachable": reachable}

    def _op_topo_order(self, request: dict) -> dict:
        session = self._session(request)
        nodes = self._nodes(request)
        labels = {}
        for node, record in self.label_collector.submit(session, nodes).items():
            labels[node] = record[1] if record is not None else None
        components = sorted(
            {label for label in labels.values() if label is not None}
        )
        layers = (
            self.topo_collector.submit(session, components) if components else {}
        )
        orders = {}
        for node in set(nodes):
            label = labels.get(node)
            if label is None:
                orders[str(node)] = None
            else:
                record = layers.get(label)
                orders[str(node)] = [label, record[1] if record is not None else 0]
        return {"ok": True, "orders": orders}

    def _op_session_stats(self, request: dict) -> dict:
        session = self._session(request)
        return {"ok": True, "ledger": session.ledger()}

    def _op_server_stats(self, request: dict) -> dict:
        stats = self.store.server_stats()
        stats["sessions"] = self.sessions.roll_up()
        return {"ok": True, "stats": stats}

    def _op_shutdown(self, request: dict) -> dict:
        # The handler loop sees "op": "shutdown" echoed back and stops
        # the server after acknowledging.
        return {"ok": True, "op": "shutdown"}

    _OPS = {
        "ping": _op_ping,
        "open-session": _op_open_session,
        "close-session": _op_close_session,
        "scc-label": _op_scc_label,
        "same-component": _op_same_component,
        "reachable": _op_reachable,
        "topo-order": _op_topo_order,
        "session-stats": _op_session_stats,
        "server-stats": _op_server_stats,
        "shutdown": _op_shutdown,
    }
