"""Per-tenant sessions and the service-level ledger roll-up.

Every client session owns its own :class:`~repro.io.stats.IOStats`
ledger; the batch engine charges a session for the distinct blocks *its*
lookups needed before performing any physical read, so an
:class:`~repro.io.stats.IOBudget`-capped tenant is throttled at
admission time — its denied batch performs zero I/O and other tenants'
batches in the same epoch are unaffected.

Because block reads are shared across tenants within an epoch (two
sessions asking for nodes in the same block pay one physical read), the
*attributed* roll-up over sessions is an upper bound on the service's
physical ledger; with a single tenant the two are equal.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.exceptions import IOBudgetExceeded, UnknownSessionError
from repro.io.stats import IOBudget, IOSnapshot, IOStats

__all__ = ["SessionManager", "TenantSession"]


class TenantSession:
    """One tenant's open session: an I/O ledger plus admission control.

    Args:
        session_id: the service-assigned id (``"s1"``, ``"s2"``, ...).
        tenant: the tenant name the client declared.
        io_budget: optional cap on the session's attributed block I/Os;
            a batch that would cross it is rejected whole at admission.
    """

    def __init__(
        self, session_id: str, tenant: str, io_budget: Optional[int] = None
    ) -> None:
        self.id = session_id
        self.tenant = tenant
        self.stats = IOStats(
            budget=IOBudget(io_budget) if io_budget is not None else None
        )
        self.queries = 0
        self.lookups = 0
        self.cache_hits = 0
        self.throttled = 0
        self.created = time.time()

    def admit_read_blocks(self, blocks: int, sequential: bool) -> None:
        """Charge ``blocks`` attributed reads, or throttle.

        The admission check runs *before* the charge: a rejected batch
        leaves the ledger untouched (it performs no I/O), so a session's
        counters always equal the block reads actually done on its
        behalf and never exceed its budget.
        """
        budget = self.stats.budget
        if budget is not None and self.stats.total + blocks > budget.max_ios:
            self.throttled += 1
            self.stats.health.record_event(
                f"throttled: batch of {blocks} blocks would exceed "
                f"budget {budget.max_ios} (used {self.stats.total})"
            )
            raise IOBudgetExceeded(self.stats.total + blocks, budget.max_ios)
        if blocks:
            self.stats.record_read(sequential=sequential, blocks=blocks)

    def note_query(self, lookups: int, cache_hits: int) -> None:
        """Record one answered query of ``lookups`` point lookups."""
        self.queries += 1
        self.lookups += lookups
        self.cache_hits += cache_hits

    def ledger(self) -> dict:
        """The session's JSON-friendly per-tenant accounting view."""
        budget = self.stats.budget
        return {
            "session": self.id,
            "tenant": self.tenant,
            "io": self.stats.snapshot().to_dict(),
            "queries": self.queries,
            "lookups": self.lookups,
            "cache_hits": self.cache_hits,
            "throttled": self.throttled,
            "io_budget": budget.max_ios if budget is not None else None,
            "events": list(self.stats.health.events),
        }


class SessionManager:
    """The open-session table plus the closed-session residue.

    Closing a session folds its counters into the residue totals, so the
    service-level roll-up is stable across session churn.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sessions: Dict[str, TenantSession] = {}
        self._counter = 0
        self._closed_io = IOSnapshot()
        self._closed_queries = 0
        self._closed_lookups = 0
        self._closed_throttled = 0

    def create(
        self, tenant: str, io_budget: Optional[int] = None
    ) -> TenantSession:
        """Open a session for ``tenant`` and return it."""
        with self._lock:
            self._counter += 1
            session = TenantSession(f"s{self._counter}", tenant, io_budget)
            self._sessions[session.id] = session
            return session

    def get(self, session_id: str) -> TenantSession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(session_id)
        return session

    def close(self, session_id: str) -> dict:
        """Close a session; returns its final ledger."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
            if session is None:
                raise UnknownSessionError(session_id)
            self._closed_io = self._closed_io + session.stats.snapshot()
            self._closed_queries += session.queries
            self._closed_lookups += session.lookups
            self._closed_throttled += session.throttled
        return session.ledger()

    def sessions(self) -> List[TenantSession]:
        with self._lock:
            return list(self._sessions.values())

    def roll_up(self) -> dict:
        """The service-level view: every open ledger plus the residue.

        ``attributed`` sums the per-session snapshots with
        :meth:`IOSnapshot.__add__`; block sharing across tenants makes it
        an upper bound on the physical service ledger.
        """
        sessions = self.sessions()
        attributed = self._closed_io
        for session in sessions:
            attributed = attributed + session.stats.snapshot()
        return {
            "open_sessions": len(sessions),
            "attributed": attributed.to_dict(),
            "queries": self._closed_queries + sum(s.queries for s in sessions),
            "lookups": self._closed_lookups + sum(s.lookups for s in sessions),
            "throttled": self._closed_throttled
            + sum(s.throttled for s in sessions),
            "sessions": [s.ledger() for s in sessions],
        }
