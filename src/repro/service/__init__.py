"""Multi-tenant graph query service.

The long-running counterpart of the one-shot CLI: a daemon holds one
persisted label store open (shared read-only device handles, see
:func:`repro.io.persistent.open_shared`) and serves ``scc-label`` /
``same-component`` / ``reachable`` / ``topo-order`` point queries to many
concurrent clients.

Layers, bottom up:

* :mod:`repro.service.store` — builds and opens the persisted label
  store (SCC labels, condensation edges, topological layers + fence-key
  metadata) and owns the boot-time reachability index;
* :mod:`repro.service.session` — per-tenant sessions, each with its own
  :class:`~repro.io.stats.IOStats` ledger and optional
  :class:`~repro.io.stats.IOBudget` admission control, rolled up into a
  service-level view;
* :mod:`repro.service.batch` — the batched execution path: point
  lookups are deduplicated, sorted by block, and answered with one read
  per distinct block (O(sorted scan) instead of N seeks), behind an LRU
  :class:`~repro.io.cache.LabelCache`;
* :mod:`repro.service.daemon` / :mod:`repro.service.client` — the
  JSON-lines TCP surface and its thin client (``scc serve`` /
  ``scc query``).
"""

from repro.service.batch import BatchCollector, BatchEngine
from repro.service.client import ServiceClient
from repro.service.daemon import QueryDaemon
from repro.service.session import SessionManager, TenantSession
from repro.service.store import LabelStore, build_store

__all__ = [
    "BatchCollector",
    "BatchEngine",
    "LabelStore",
    "QueryDaemon",
    "ServiceClient",
    "SessionManager",
    "TenantSession",
    "build_store",
]
