"""Thin synchronous client for the query daemon.

Speaks the JSON-lines protocol of :mod:`repro.service.daemon` over one
TCP connection, owns at most one session, and keeps the per-session
accounting (`--trace-json`-style) one call away::

    with ServiceClient(port=port) as client:
        client.open_session("tenant-a", io_budget=1000)
        labels = client.scc_label([1, 2, 3])
        print(client.session_stats()["io"]["total"])

Error responses raise: ``throttled`` becomes
:class:`~repro.exceptions.IOBudgetExceeded`, ``unknown-node`` /
``unknown-session`` their dedicated classes, anything else
:class:`~repro.exceptions.ServiceProtocolError`.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import (
    IOBudgetExceeded,
    ServiceProtocolError,
    UnknownNodeError,
    UnknownSessionError,
)

__all__ = ["ServiceClient"]


def _raise_for(error: str, message: str) -> None:
    if error == "throttled":
        # Rebuild the server-side exception with its original message
        # (the used/budget numbers live in the text).
        exc = IOBudgetExceeded.__new__(IOBudgetExceeded)
        Exception.__init__(exc, message)
        raise exc
    if error == "unknown-node":
        raise UnknownNodeError(_leading_int(message))
    if error == "unknown-session":
        raise UnknownSessionError(message)
    raise ServiceProtocolError(f"{error}: {message}")


def _leading_int(message: str) -> int:
    for token in message.split():
        try:
            return int(token)
        except ValueError:
            continue
    return -1


class ServiceClient:
    """One connection + one optional session against a running daemon."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self.session: Optional[str] = None

    # -- transport ---------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """One request/response round trip; raises on error responses."""
        self._sock.sendall((json.dumps(payload) + "\n").encode("ascii"))
        line = self._rfile.readline()
        if not line:
            raise ServiceProtocolError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            _raise_for(
                response.get("error", "error"), response.get("message", "")
            )
        return response

    def _session_payload(self, payload: dict) -> dict:
        if self.session is None:
            raise ServiceProtocolError("open_session first")
        payload["session"] = self.session
        return payload

    # -- session lifecycle -------------------------------------------------

    def open_session(
        self, tenant: str = "default", io_budget: Optional[int] = None
    ) -> str:
        """Open (and remember) a session; returns its id."""
        payload: dict = {"op": "open-session", "tenant": tenant}
        if io_budget is not None:
            payload["io_budget"] = io_budget
        self.session = self.request(payload)["session"]
        return self.session

    def close_session(self) -> Optional[dict]:
        """Close the session; returns its final ledger (None if unopened)."""
        if self.session is None:
            return None
        response = self.request(
            self._session_payload({"op": "close-session"})
        )
        self.session = None
        return response["ledger"]

    # -- queries -----------------------------------------------------------

    def scc_label(self, nodes: Sequence[int]) -> Dict[int, Optional[int]]:
        response = self.request(
            self._session_payload({"op": "scc-label", "nodes": list(nodes)})
        )
        return {int(node): label for node, label in response["labels"].items()}

    def same_component(self, u: int, v: int) -> bool:
        return self.request(
            self._session_payload({"op": "same-component", "u": u, "v": v})
        )["same"]

    def reachable(self, u: int, v: int) -> bool:
        return self.request(
            self._session_payload({"op": "reachable", "u": u, "v": v})
        )["reachable"]

    def topo_order(
        self, nodes: Sequence[int]
    ) -> Dict[int, Optional[Tuple[int, int]]]:
        response = self.request(
            self._session_payload({"op": "topo-order", "nodes": list(nodes)})
        )
        return {
            int(node): (tuple(order) if order is not None else None)
            for node, order in response["orders"].items()
        }

    # -- accounting --------------------------------------------------------

    def session_stats(self) -> dict:
        return self.request(self._session_payload({"op": "session-stats"}))[
            "ledger"
        ]

    def server_stats(self) -> dict:
        return self.request({"op": "server-stats"})["stats"]

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"})["ok"])

    def shutdown(self) -> None:
        """Ask the daemon to stop serving (acknowledged before it stops)."""
        self.request({"op": "shutdown"})

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        try:
            if self.session is not None:
                self.close_session()
        except Exception:
            pass
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
