"""Batched point-lookup execution: N lookups in O(sorted scan) reads.

Wang et al.'s batched multi-source reachability (the ``multi-bfs``
solver) amortizes many traversals into shared sequential scans; this
module applies the same idea to the service's point lookups.  Lookups
arriving within one epoch are buffered (:class:`BatchCollector`),
deduplicated against the LRU :class:`~repro.io.cache.LabelCache`, sorted
by block through the node table's in-memory fence keys, and answered
with one block read per *distinct* block in ascending order
(:class:`BatchEngine`) — a partial sorted scan instead of one random
seek per lookup.

Accounting: each session is charged, at admission, for the distinct
blocks *its own* missing keys needed (so an over-budget tenant is
rejected before any I/O happens, without touching other tenants'
entries), while the physical reads — the union of the admitted entries'
blocks — land on the service-level ledger the node table reads through.
Every flush records one PR 5 trace span carrying the block count and
the wall time.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.node_table import NodeTable
from repro.exceptions import IOBudgetExceeded
from repro.io.cache import LabelCache
from repro.plan.trace import Span, TraceLedger
from repro.service.session import TenantSession

__all__ = ["BatchCollector", "BatchEngine"]

Record = Tuple[int, ...]
Entry = Tuple[Optional[TenantSession], Sequence[int]]


class BatchEngine:
    """Executes batches of point lookups against one :class:`NodeTable`.

    Args:
        table: the sorted on-disk table (fence keys ideally prefilled,
            so locating blocks costs no I/O).
        cache: the LRU point cache consulted first; capacity 0 disables.
        trace: optional ledger that receives one span per flush.
        name: label used in span stages/operators (``"scc-label"``).
    """

    def __init__(
        self,
        table: NodeTable,
        cache: LabelCache,
        trace: Optional[TraceLedger] = None,
        name: str = "lookup",
    ) -> None:
        self.table = table
        self.cache = cache
        self.trace = trace
        self.name = name
        self.flushes = 0
        self._lock = threading.Lock()

    def lookup(
        self, session: Optional[TenantSession], nodes: Sequence[int]
    ) -> Dict[int, Optional[Record]]:
        """Answer one entry synchronously (a batch of size one).

        Raises :class:`IOBudgetExceeded` when the session is throttled.
        """
        outcome = self.flush([(session, nodes)])[0]
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def flush(self, entries: Sequence[Entry]) -> List[object]:
        """Execute a batch of entries; one outcome per entry, in order.

        An outcome is either a ``{node: record-or-None}`` dict over the
        entry's (deduplicated) nodes, or the :class:`IOBudgetExceeded`
        the entry's throttled admission raised — a throttled entry never
        blocks the others in the batch.
        """
        with self._lock:
            started = time.perf_counter()
            # Cache pass + per-entry block planning.
            plans = []
            for session, nodes in entries:
                wanted = sorted(set(nodes))
                found: Dict[int, Optional[Record]] = {}
                missing: List[int] = []
                for node in wanted:
                    value = self.cache.get(node)
                    if value is LabelCache.MISSING:
                        missing.append(node)
                    else:
                        found[node] = value  # type: ignore[assignment]
                if missing and self.table.file.num_blocks:
                    blocks = sorted({self.table.block_of(n) for n in missing})
                else:
                    blocks = []
                plans.append([session, found, missing, blocks, None])
            # Admission: charge each session its own distinct blocks
            # before any physical read; a throttled entry drops out here.
            for plan in plans:
                session, _, _, blocks, _ = plan
                if session is None or not blocks:
                    continue
                try:
                    session.admit_read_blocks(
                        len(blocks), sequential=len(blocks) > 1
                    )
                except IOBudgetExceeded as exc:
                    plan[4] = exc
            # Physical reads: the union of the admitted entries' missing
            # keys, one read per distinct block, ascending.
            union_nodes = [
                node for plan in plans if plan[4] is None for node in plan[2]
            ]
            union_blocks = {
                block for plan in plans if plan[4] is None for block in plan[3]
            }
            looked: Dict[int, Optional[Record]] = (
                self.table.get_batch(union_nodes) if union_nodes else {}
            )
            for node, record in looked.items():
                self.cache.put(node, record)
            # Assemble per-entry outcomes.
            outcomes: List[object] = []
            for session, found, missing, _, error in plans:
                if error is not None:
                    outcomes.append(error)
                    continue
                result = dict(found)
                for node in missing:
                    result[node] = looked.get(node)
                if session is not None:
                    session.note_query(len(result), cache_hits=len(found))
                outcomes.append(result)
            self.flushes += 1
            if self.trace is not None:
                reads = len(union_blocks)
                self.trace.record(
                    Span(
                        plan="service",
                        stage=f"{self.name}#{self.flushes}",
                        phase=f"query/{self.name}",
                        operators=(f"batch-lookup:{self.name}",),
                        predicted_ios=reads,
                        reads=reads,
                        writes=0,
                        random_ios=reads if reads == 1 else 0,
                        records=len(union_nodes),
                        bytes_stored=0,
                        makespan=reads,
                        wall_seconds=time.perf_counter() - started,
                    )
                )
            return outcomes

    def hit_rate_report(self) -> dict:
        """Cache effectiveness, surfaced in server stats and traces."""
        return {
            "label_cache_hit_rate": self.cache.hit_rate,
            "label_cache_lookups": self.cache.lookups,
            "table_cache_hit_rate": self.table.cache_hit_rate,
            "batch_block_reads": self.table.batch_block_reads,
            "batch_lookups": self.table.batch_lookups,
            "flushes": self.flushes,
        }


class _Pending:
    __slots__ = ("session", "nodes", "event", "outcome")

    def __init__(self, session: Optional[TenantSession], nodes: Sequence[int]) -> None:
        self.session = session
        self.nodes = nodes
        self.event = threading.Event()
        self.outcome: object = None


class BatchCollector:
    """Epoch buffer in front of a :class:`BatchEngine`.

    Concurrent callers :meth:`submit` lookups and block; a background
    flusher wakes on the first arrival, sleeps one epoch so co-arriving
    requests coalesce, then flushes everything buffered as one batch.
    ``epoch_seconds=0`` degrades to flush-per-wakeup (still coalescing
    whatever queued while a flush was running).
    """

    def __init__(
        self,
        engine: BatchEngine,
        epoch_seconds: float = 0.005,
        max_batch: int = 4096,
    ) -> None:
        self.engine = engine
        self.epoch_seconds = epoch_seconds
        self.max_batch = max_batch
        self._pending: List[_Pending] = []
        self._cond = threading.Condition()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name=f"batch-{engine.name}", daemon=True
        )
        self._thread.start()

    def submit(
        self, session: Optional[TenantSession], nodes: Sequence[int]
    ) -> Dict[int, Optional[Record]]:
        """Enqueue one entry and wait for its epoch to flush.

        Raises the entry's own :class:`IOBudgetExceeded` when throttled.
        """
        entry = _Pending(session, list(nodes))
        with self._cond:
            if self._closed:
                raise RuntimeError("batch collector is closed")
            self._pending.append(entry)
            self._cond.notify_all()
        entry.event.wait()
        if isinstance(entry.outcome, Exception):
            raise entry.outcome
        return entry.outcome  # type: ignore[return-value]

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if self._closed and not self._pending:
                    return
            if self.epoch_seconds > 0:
                time.sleep(self.epoch_seconds)
            with self._cond:
                batch = self._pending[: self.max_batch]
                del self._pending[: self.max_batch]
            if batch:
                self._flush(batch)

    def _flush(self, batch: List[_Pending]) -> None:
        try:
            outcomes = self.engine.flush(
                [(entry.session, entry.nodes) for entry in batch]
            )
        except Exception as exc:  # engine bug / storage error: fail all
            outcomes = [exc] * len(batch)
        for entry, outcome in zip(batch, outcomes):
            entry.outcome = outcome
            entry.event.set()

    def close(self) -> None:
        """Stop the flusher after draining anything still buffered."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._thread.join()
