"""The persisted label store the query service serves from.

``build_store`` runs Ext-SCC once and materializes everything the
daemon needs onto a :class:`~repro.io.persistent.PersistentBlockDevice`:

* ``scc-labels`` — ``(node, label)`` records sorted by node (canonical
  min-member labels, the same invariant the whole package pins);
* ``cond-edges`` — the distinct condensation edges ``(label_u,
  label_v)``, sorted;
* ``topo-layers`` — ``(component, layer)`` from
  :func:`~repro.apps.topological.external_topological_sort` over the
  condensation, sorted by component;
* ``service-meta.json`` — graph stats plus the *fence keys* (each
  block's leading id) of both tables, so a serving process can locate
  any key's block without a single bootstrap read.

:class:`LabelStore` opens that directory through the shared read-only
handle registry, attaches :class:`~repro.baselines.node_table.NodeTable`
readers with prefilled fences, builds the boot-time
:class:`~repro.apps.reachability.ReachabilityIndex` over the
condensation (the condensation of a DAG under identity labels is
itself), and exposes the query API the daemon dispatches to.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.apps.reachability import ReachabilityIndex
from repro.apps.topological import external_topological_sort
from repro.baselines.node_table import NodeTable
from repro.constants import EDGE_RECORD_BYTES, SCC_RECORD_BYTES
from repro.core.ext_scc import ExtSCCConfig, compute_sccs
from repro.exceptions import StorageError, UnknownNodeError
from repro.graph.digraph import DiGraph
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import DEFAULT_BLOCK_SIZE
from repro.io.cache import LabelCache
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget
from repro.io.persistent import DeviceHandle, PersistentBlockDevice, open_shared
from repro.io.stats import IOStats
from repro.plan.trace import TraceLedger
from repro.service.batch import BatchEngine
from repro.service.session import TenantSession

__all__ = [
    "LabelStore",
    "build_store",
    "META_NAME",
    "LABELS_FILE",
    "COND_EDGES_FILE",
    "TOPO_FILE",
]

META_NAME = "service-meta.json"
LABELS_FILE = "scc-labels"
COND_EDGES_FILE = "cond-edges"
TOPO_FILE = "topo-layers"

Edge = Tuple[int, int]


def _fence_keys(device, name: str):
    """Each block's leading key — exact, read back from the blocks."""
    file = ExternalFile.open(device, name)
    return [block[0][0] for block in file.scan_blocks() if block]


def build_store(
    edges: Iterable[Edge],
    directory,
    num_nodes: Optional[int] = None,
    memory_bytes: int = 1 << 20,
    block_size: int = DEFAULT_BLOCK_SIZE,
    config: Optional[ExtSCCConfig] = None,
) -> dict:
    """Compute SCCs and persist the full label store; returns the meta.

    Any previous store in ``directory`` is replaced.
    """
    edges = [(int(u), int(v)) for u, v in edges]
    out = compute_sccs(
        edges,
        num_nodes=num_nodes,
        memory_bytes=memory_bytes,
        block_size=block_size,
        config=config,
    )
    labels = out.result.labels
    memory = MemoryBudget(memory_bytes)
    device = PersistentBlockDevice(directory, block_size=block_size)
    for name in list(device.list_files()):
        device.delete(name)
    label_records = sorted(labels.items())
    ExternalFile.from_records(
        device, LABELS_FILE, label_records, SCC_RECORD_BYTES
    )
    condensation_edges = sorted(
        {(labels[u], labels[v]) for u, v in edges if labels[u] != labels[v]}
    )
    cond_file = ExternalFile.from_records(
        device, COND_EDGES_FILE, condensation_edges, EDGE_RECORD_BYTES
    )
    components = sorted(set(labels.values()))
    node_file = NodeFile.from_ids(
        device, device.temp_name("cond-nodes"), components, memory,
        presorted=True,
    )
    layers = external_topological_sort(
        device, EdgeFile(cond_file), node_file, memory
    )
    # The sort output may be codec-compressed (a var-record store); the
    # serving path needs fixed-width records for block binary search, so
    # re-materialize it plain.
    ExternalFile.from_records(
        device, TOPO_FILE, layers.scan(), SCC_RECORD_BYTES, overwrite=True
    )
    layers.delete()
    node_file.delete()
    # Drop any sort intermediates so the manifest carries exactly the
    # three serving files.
    keep = {LABELS_FILE, COND_EDGES_FILE, TOPO_FILE}
    for name in list(device.list_files()):
        if name not in keep:
            device.delete(name)
    meta = {
        "format": 1,
        "block_size": block_size,
        "num_nodes": len(labels),
        "num_edges": len(edges),
        "num_sccs": len(components),
        "scc_io": out.io.total,
        "fences": {
            LABELS_FILE: _fence_keys(device, LABELS_FILE),
            TOPO_FILE: _fence_keys(device, TOPO_FILE),
        },
    }
    (Path(directory) / META_NAME).write_text(json.dumps(meta, indent=1))
    device.close()
    return meta


class LabelStore:
    """A serving handle over a built store directory.

    Holds one shared read-only device lease, two fence-prefilled node
    tables behind batch engines + label caches, the service-level
    physical I/O ledger, and the boot-time reachability index.

    Args:
        directory: a directory ``build_store`` populated.
        memory_bytes: budget for the tables' buffer pools.
        cache_entries: LRU label-cache capacity per table (0 disables —
            the configuration the batched-vs-random CI gate measures).
        num_labelings / seed: forwarded to the reachability index.
    """

    def __init__(
        self,
        directory,
        memory_bytes: int = 1 << 20,
        cache_entries: int = 4096,
        num_labelings: int = 3,
        seed: int = 0,
    ) -> None:
        self.directory = Path(directory)
        meta_path = self.directory / META_NAME
        if not meta_path.exists():
            raise StorageError(f"no label store at {self.directory} (missing {META_NAME})")
        self.meta = json.loads(meta_path.read_text())
        self.handle: DeviceHandle = open_shared(
            self.directory, self.meta["block_size"]
        )
        self.stats = IOStats()  # the service-level *physical* ledger
        self.reader = self.handle.reader(stats=self.stats)
        memory = MemoryBudget(memory_bytes)
        fences = self.meta.get("fences", {})
        self.labels = NodeTable.open(
            self.reader, LABELS_FILE, memory, fence=fences.get(LABELS_FILE)
        )
        self.topo = NodeTable.open(
            self.reader, TOPO_FILE, memory, fence=fences.get(TOPO_FILE)
        )
        self.trace = TraceLedger()
        self.label_engine = BatchEngine(
            self.labels, LabelCache(cache_entries), trace=self.trace,
            name="scc-label",
        )
        self.topo_engine = BatchEngine(
            self.topo, LabelCache(cache_entries), trace=self.trace,
            name="topo-order",
        )
        # Reachability over the condensation: one boot-time sequential
        # scan of the (far smaller) condensation edges, then in-memory
        # interval pruning + memoized DFS per query.  Identity labels —
        # a DAG's condensation under them is itself.
        with self.stats.phase("boot"):
            dag_edges = list(
                ExternalFile.open(self.reader, COND_EDGES_FILE).scan()
            )
        linked = set()
        for cu, cv in dag_edges:
            linked.add(cu)
            linked.add(cv)
        self._linked_components = linked
        self._reach = ReachabilityIndex(
            DiGraph(dag_edges, nodes=linked),
            {c: c for c in linked},
            num_labelings=num_labelings,
            seed=seed,
        )
        self._reach_lock = threading.Lock()

    # -- queries (all session-attributed through the engines) -------------

    def lookup_labels(
        self, session: Optional[TenantSession], nodes: Sequence[int]
    ) -> Dict[int, Optional[int]]:
        """SCC label per node (``None`` for nodes the store never saw)."""
        records = self.label_engine.lookup(session, nodes)
        return {
            node: (record[1] if record is not None else None)
            for node, record in records.items()
        }

    def _require_labels(
        self, session: Optional[TenantSession], nodes: Sequence[int]
    ) -> Dict[int, int]:
        labels = self.lookup_labels(session, nodes)
        for node, label in labels.items():
            if label is None:
                raise UnknownNodeError(node)
        return labels  # type: ignore[return-value]

    def same_component(
        self, session: Optional[TenantSession], u: int, v: int
    ) -> bool:
        """Whether ``u`` and ``v`` are strongly connected."""
        labels = self._require_labels(session, [u, v])
        return labels[u] == labels[v]

    def reachable(
        self, session: Optional[TenantSession], u: int, v: int
    ) -> bool:
        """Whether a directed path ``u -> v`` exists."""
        labels = self._require_labels(session, [u, v])
        cu, cv = labels[u], labels[v]
        if cu == cv:
            return True
        if cu not in self._linked_components or cv not in self._linked_components:
            return False  # an isolated component reaches only itself
        with self._reach_lock:  # the index memoizes; guard its caches
            return self._reach.reachable(cu, cv)

    def topo_orders(
        self, session: Optional[TenantSession], nodes: Sequence[int]
    ) -> Dict[int, Optional[Tuple[int, int]]]:
        """``node -> (component, layer)`` — sorting by ``(layer, node)``
        over any answered set is a valid topological order of their
        components; ``None`` for unknown nodes."""
        labels = self.lookup_labels(session, nodes)
        components = sorted(
            {label for label in labels.values() if label is not None}
        )
        layer_records = (
            self.topo_engine.lookup(session, components) if components else {}
        )
        out: Dict[int, Optional[Tuple[int, int]]] = {}
        for node, label in labels.items():
            if label is None:
                out[node] = None
            else:
                record = layer_records.get(label)
                out[node] = (label, record[1] if record is not None else 0)
        return out

    # -- reporting / lifecycle ---------------------------------------------

    def server_stats(self) -> dict:
        """Physical ledger, cache effectiveness, and store metadata."""
        return {
            "store": {
                "directory": str(self.directory),
                "num_nodes": self.meta.get("num_nodes"),
                "num_edges": self.meta.get("num_edges"),
                "num_sccs": self.meta.get("num_sccs"),
                "block_size": self.meta.get("block_size"),
            },
            "physical_io": self.stats.snapshot().to_dict(),
            "scc_label": self.label_engine.hit_rate_report(),
            "topo_order": self.topo_engine.hit_rate_report(),
            "spans": len(self.trace.spans),
        }

    def close(self) -> None:
        self.handle.close()

    def __enter__(self) -> "LabelStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
