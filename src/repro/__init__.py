"""repro — Contract & Expand: I/O efficient external-memory SCC computation.

Reproduction of Zhang, Qin, Yu, "Contract & Expand: I/O Efficient SCCs
Computing" (ICDE 2014).  Quickstart::

    from repro import compute_sccs

    edges = [(0, 1), (1, 2), (2, 0), (2, 3)]
    output = compute_sccs(edges, memory_bytes=1 << 20)
    print(output.result.components())   # [[0, 1, 2], [3]]

Subpackages:

* :mod:`repro.io` — the simulated external-memory subsystem;
* :mod:`repro.graph` — graph files, generators, datasets;
* :mod:`repro.memory_scc` — in-memory reference solvers;
* :mod:`repro.semi_external` — semi-external solvers (Semi-SCC);
* :mod:`repro.baselines` — EM-SCC [13] and DFS-SCC [8];
* :mod:`repro.core` — Ext-SCC / Ext-SCC-Op (the paper's contribution);
* :mod:`repro.bench` — the figure-reproduction harness.
"""

from repro.core import (
    ExtSCC,
    ExtSCCConfig,
    ExtSCCOutput,
    SCCResult,
    compute_sccs,
)
from repro.exceptions import (
    InsufficientMemory,
    IOBudgetExceeded,
    NonTermination,
    ReproError,
    StorageError,
)
from repro.io import BlockDevice, ExternalFile, IOBudget, IOStats, MemoryBudget

__version__ = "1.0.0"

__all__ = [
    "compute_sccs",
    "ExtSCC",
    "ExtSCCConfig",
    "ExtSCCOutput",
    "SCCResult",
    "BlockDevice",
    "ExternalFile",
    "MemoryBudget",
    "IOStats",
    "IOBudget",
    "ReproError",
    "IOBudgetExceeded",
    "NonTermination",
    "InsufficientMemory",
    "StorageError",
    "__version__",
]
