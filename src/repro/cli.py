"""Command-line interface: ``python -m repro <command>``.

Three commands make the library usable as a tool:

* ``scc`` — compute all SCCs of an edge-list file (text ``u v`` lines or
  packed binary) and write a ``node scc`` labels file, printing the
  paper's statistics (iterations, sequential/random block I/Os);
* ``generate`` — materialize a Table I / webspam workload to a file;
* ``bench`` — run one algorithm on an edge-list file under a simulated
  memory budget and report the I/O ledger;
* ``stats`` — degree/structure statistics of an edge-list file;
* ``verify`` — check a ``node scc`` labels file against a recomputation;
* ``serve`` — build/open a persisted label store and run the multi-tenant
  query daemon over it;
* ``query`` — one client round trip against a running daemon
  (scc-label / same-component / reachable / topo-order / stats).

Sizes accept suffixes: ``64K``, ``4M``, ``1G``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.analysis.calibration import CalibrationProfile, calibration_path_for
from repro.bench.harness import ALGORITHMS, run_algorithm
from repro.core import ExtSCCConfig, compute_sccs
from repro.core.config import OBJECTIVES
from repro.exceptions import (
    CorruptBlockError,
    ReproError,
    RetryExhaustedError,
    StorageError,
)
from repro.graph.datasets import build_dataset
from repro.graph.io_formats import read_edge_binary, read_edge_text, write_edge_binary, write_edge_text
from repro.io.parallel import EXECUTOR_BACKENDS, processes_available
from repro.plan import PlanCache
from repro.recovery.policy import FaultPolicy
from repro.semi_external import SEMI_SCC_SOLVERS
from repro import kernels

__all__ = ["main", "parse_size"]


def _check_executor(executor: str) -> Optional[str]:
    """Platform validation for ``--executor``: the ``processes`` backend
    needs a working fork/spawn + semaphore implementation.  Returns an
    error message, or ``None`` when the choice can run here."""
    if executor == "processes" and not processes_available():
        return (
            "--executor processes is unavailable on this platform "
            "(no usable fork/spawn start method or no working "
            "multiprocessing semaphores); use --executor threads or serial"
        )
    return None

_SUFFIXES = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}


def _count(text: str) -> int:
    """Parse a count that may use scientific notation (``1e8``)."""
    return int(float(text))


def parse_size(text: str) -> int:
    """Parse ``4096`` / ``64K`` / ``4M`` / ``1G`` into bytes."""
    text = text.strip().upper()
    if text and text[-1] in _SUFFIXES:
        return int(float(text[:-1]) * _SUFFIXES[text[-1]])
    return int(text)


def _positive_int(text: str) -> int:
    """Argparse type for ``--workers``: rejects 0 and negatives up front
    (``--workers 0`` used to be silently accepted and run serial)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (shard width K >= 1), got {value}"
        )
    return value


def _fault_policy(text: str) -> FaultPolicy:
    """Argparse type for ``--fault-policy``: ``key=value`` pairs, e.g.
    ``retries=5,backoff=0.002,deadline=1.0`` (see
    :meth:`FaultPolicy.parse`)."""
    try:
        return FaultPolicy.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _load_edges(path: str, binary: bool) -> List:
    reader = read_edge_binary if binary else read_edge_text
    return list(reader(path))


def _run_checkpointed(args: argparse.Namespace, config, on_iteration,
                      profile=None, cache=None):
    """Run ``scc`` against a persistent device directory with journaling.

    A fresh run wipes the directory and loads the input; ``--resume``
    reuses the stored input and continues from the journal.  With
    ``--autotune`` (fresh starts only — ``_cmd_scc`` refuses the resume
    combination), the knob search runs over the loaded input before the
    pipeline starts.
    """
    from repro.analysis.planner import autotune_config
    from repro.core.ext_scc import ExtSCC
    from repro.graph.edge_file import EdgeFile, NodeFile
    from repro.io.files import ExternalFile
    from repro.io.memory import MemoryBudget
    from repro.io.persistent import PersistentBlockDevice
    from repro.recovery import CheckpointManager

    device = PersistentBlockDevice(
        args.checkpoint_dir, block_size=parse_size(args.block_size)
    )
    if args.fault_policy is not None:
        device.attach_policy(args.fault_policy)
    memory = MemoryBudget(parse_size(args.memory))
    manager = CheckpointManager(device)
    tuning = None
    if args.resume and device.exists("input-edges"):
        edge_file = EdgeFile(ExternalFile.open(device, "input-edges"))
        node_file = (
            NodeFile(ExternalFile.open(device, "input-nodes"))
            if device.exists("input-nodes") else None
        )
    else:
        # Fresh start: clear any previous run's files and journal.
        for name in device.list_files():
            device.delete(name)
        manager.reset()
        edges = _load_edges(args.input, args.binary)
        if args.autotune:
            n = args.nodes or (
                1 + max(max(u, v) for u, v in edges) if edges else 0
            )
            tuning = autotune_config(
                n, len(edges), memory.nbytes, device.block_size,
                config=config, profile=profile, cache=cache,
            )
            config = tuning.config(config)
        edge_file = EdgeFile.from_edges(device, "input-edges", edges)
        node_file = None
        if args.nodes:
            node_file = NodeFile.from_ids(
                device, "input-nodes", range(args.nodes), memory, presorted=True
            )
    try:
        return device, ExtSCC(config, calibration=profile).run(
            device, edge_file, memory, nodes=node_file,
            on_iteration=on_iteration, checkpoint=manager, tuning=tuning,
        )
    except BaseException:
        device.sync()  # keep the journal durable for a later --resume
        raise


def _explain_scc(args: argparse.Namespace, config, profile=None,
                 cache=None) -> int:
    """``scc --explain``: print the optimized operator DAG of the first
    phase the run would execute (contract-1, or the semi-external hand-off
    when the input already fits) plus the analytic full-run schedule,
    without running anything.  With ``--autotune``, the candidate table —
    every enumerated (codec, K, executor, solver) with its calibrated
    prices — is printed first and the chosen config's plan follows."""
    from repro.analysis import plan_ext_scc
    from repro.analysis.cost_model import CostModel
    from repro.analysis.planner import autotune_config, optimize_plan
    from repro.core.contraction import build_contract_plan
    from repro.core.ext_scc import ExtSCC
    from repro.graph.edge_file import EdgeFile, NodeFile
    from repro.io.blocks import BlockDevice
    from repro.io.memory import MemoryBudget
    from repro.semi_external import build_semi_plan

    block_size = parse_size(args.block_size)
    memory_bytes = parse_size(args.memory)
    device = BlockDevice(block_size=block_size)
    memory = MemoryBudget(memory_bytes)
    edges = _load_edges(args.input, args.binary)
    edge_file = EdgeFile.from_edges(device, "input-edges", edges)
    if args.nodes:
        node_file = NodeFile.from_ids(
            device, "input-nodes", range(args.nodes), memory, presorted=True
        )
    else:
        node_file = edge_file.node_file(memory)
    decision = None
    if args.autotune:
        decision = autotune_config(
            node_file.num_nodes, edge_file.num_edges, memory_bytes,
            block_size, config=config, profile=profile, cache=cache,
        )
        config = decision.config(config)
        print(decision.render())
        print()
    solver = ExtSCC(config, calibration=profile)
    if profile is not None:
        model = profile.model(block_size, memory_bytes, config.codec)
    else:
        model = CostModel(block_size, memory_bytes)
    if solver.nodes_fit(node_file.num_nodes, memory, block_size):
        plan = build_semi_plan(
            device, edge_file, node_file, memory, config.semi_scc
        )
    else:
        plan = build_contract_plan(
            device, edge_file, node_file, memory, config, level=1
        )
    optimize_plan(plan, model, config, decision=decision)
    print(plan.render())
    print()
    print(plan_ext_scc(
        node_file.num_nodes, edge_file.num_edges, memory_bytes, block_size,
        model=model,
    ).render())
    return 0


def _render_health(health: dict) -> str:
    """One ``scc -v`` / ``bench`` line for the fault-health ledger."""
    return (
        f"health: retries={health.get('retries', 0)} "
        f"repairs={health.get('repairs', 0)} "
        f"redispatches={health.get('redispatches', 0)} "
        f"parity-writes={health.get('parity_writes', 0)} "
        f"escalations={health.get('escalations', 0)} "
        f"backoff={health.get('backoff_seconds', 0.0):.3f}s"
    )


def _cmd_scc(args: argparse.Namespace) -> int:
    from dataclasses import replace

    num_nodes = args.nodes if args.nodes else None
    config = (
        ExtSCCConfig.optimized() if args.algorithm == "ext-scc-op"
        else ExtSCCConfig.baseline()
    )
    error = _check_executor(args.executor)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.workers > 1 or args.executor != "serial":
        config = replace(config, workers=args.workers, executor=args.executor)
    if args.solver is not None:
        config = replace(config, semi_scc=args.solver)
    if args.objective != "io":
        config = replace(config, objective=args.objective)
    if args.verbose and kernels.requested() and not kernels.available():
        print(f"note: {kernels.fallback_reason()}; running the "
              "byte-identical pure-Python kernels", file=sys.stderr)
    if args.autotune and args.resume:
        print(
            "error: --autotune cannot be combined with --resume (the "
            "journal fixes the codec; re-tuning would invalidate it)",
            file=sys.stderr,
        )
        return 2
    if args.parity and args.checkpoint_dir:
        print(
            "error: --parity needs the in-memory striped device; the "
            "persistent --checkpoint-dir device has no parity channel "
            "(its durability story is the journal + checksums — use "
            "--resume to recover instead)",
            file=sys.stderr,
        )
        return 2
    # The calibration profile lives next to the device manifest by
    # convention; --calibration overrides the location.
    calibration_path = args.calibration or (
        calibration_path_for(args.checkpoint_dir)
        if args.checkpoint_dir else None
    )
    profile = (
        CalibrationProfile.load(calibration_path)
        if calibration_path and os.path.exists(calibration_path) else
        CalibrationProfile() if (calibration_path or args.autotune) else None
    )
    cache = PlanCache(args.plan_cache) if args.plan_cache else None
    if args.explain:
        return _explain_scc(args, config, profile=profile, cache=cache)

    def progress(record) -> None:
        print(
            f"  iteration {record.level}: |V| {record.num_nodes:,} -> "
            f"{record.next_num_nodes:,}, |E| {record.num_edges:,} -> "
            f"{record.next_num_edges:,} ({record.io.total:,} I/Os)",
            file=sys.stderr,
        )

    started = time.perf_counter()
    if args.checkpoint_dir:
        device, out = _run_checkpointed(
            args, config, progress if args.verbose else None,
            profile=profile, cache=cache,
        )
        device.close()
        if out.resumed:
            print(
                f"resumed from checkpoint in {args.checkpoint_dir} "
                f"(recovery: {out.recovery_io.total} block I/Os)",
                file=sys.stderr,
            )
        edge_count = out.iterations[0].num_edges if out.iterations else None
    else:
        edges = _load_edges(args.input, args.binary)
        edge_count = len(edges)
        out = compute_sccs(
            edges,
            num_nodes=num_nodes,
            memory_bytes=parse_size(args.memory),
            block_size=parse_size(args.block_size),
            config=config,
            on_iteration=progress if args.verbose else None,
            autotune=args.autotune,
            calibration=profile,
            plan_cache=cache,
            fault_policy=args.fault_policy,
            parity=args.parity,
        )
    elapsed = time.perf_counter() - started
    result = out.result
    if out.tuning is not None:
        chosen = out.tuning.chosen
        source = (
            "plan cache" if out.tuning.cache_hit
            else f"{len(out.tuning.candidates)} candidates in "
                 f"{out.tuning.planning_seconds * 1e3:.1f}ms"
        )
        print(
            f"autotune[{out.tuning.objective}]: codec={chosen.codec} "
            f"workers={chosen.workers} executor={chosen.executor} "
            f"solver={chosen.solver}  ({source})",
            file=sys.stderr,
        )
    edge_note = "?" if edge_count is None else edge_count
    print(f"nodes: {result.num_nodes}  edges: {edge_note}", file=sys.stderr)
    print(
        f"sccs: {result.num_sccs}  largest: {result.largest_size}  "
        f"non-trivial: {result.num_nontrivial}",
        file=sys.stderr,
    )
    print(
        f"iterations: {out.num_iterations}  block I/Os: {out.io.total} "
        f"(sequential {out.io.sequential}, random {out.io.random})  "
        f"{elapsed:.2f}s",
        file=sys.stderr,
    )
    if args.verbose and out.phase_seconds:
        breakdown = "  ".join(
            f"{label}: {seconds:.2f}s"
            for label, seconds in out.phase_seconds.items()
        )
        print(
            f"wall by phase: {breakdown}  (run total {out.wall_seconds:.2f}s)",
            file=sys.stderr,
        )
    if args.workers > 1:
        print(
            f"workers: {args.workers}  makespan: {out.makespan} block I/Os  "
            f"speedup: {out.parallel_speedup:.2f}x",
            file=sys.stderr,
        )
    # The health line only appears when the machinery is in play — plain
    # verbose runs keep their exact pre-fault-tolerance output.
    if args.verbose and (
        args.fault_policy is not None or args.parity
        or any(v for v in out.health.values())
    ):
        print(_render_health(out.health), file=sys.stderr)
        for event in out.health.get("events", ()):
            print(f"  degraded: {event}", file=sys.stderr)
    if args.trace_json:
        run_config = out.config
        context = {
            "codec": run_config.codec,
            "executor": run_config.executor,
            "workers": run_config.workers,
            "solver": run_config.semi_scc,
            "objective": run_config.objective,
            "block_size": parse_size(args.block_size),
            "memory_bytes": parse_size(args.memory),
            "io_total": out.io.total,
            "semi_io_total": out.semi_io.total,
            "wall_seconds": out.wall_seconds,
            "final_edges": (
                out.iterations[-1].next_num_edges if out.iterations else 0
            ),
            "bytes_by_width": {
                str(width): [count, stored]
                for width, (count, stored) in sorted(out.bytes_by_width.items())
            },
            "autotune": out.tuning.to_payload() if out.tuning else None,
            "cache": cache.stats() if cache is not None else None,
            "health": out.health,
            "kernels": {
                "numpy_requested": kernels.requested(),
                "numpy_active": kernels.available(),
                "fallback_reason": kernels.fallback_reason(),
            },
        }
        with open(args.trace_json, "w", encoding="ascii") as f:
            f.write(out.trace.to_json(plans=out.plans, context=context))
        print(
            f"trace ({len(out.trace.spans)} spans) written to "
            f"{args.trace_json}",
            file=sys.stderr,
        )
    if args.verbose and out.trace.spans:
        print(out.trace.render(), file=sys.stderr)
    if calibration_path is not None:
        profile.ingest_run(out, block_size=parse_size(args.block_size))
        profile.save(calibration_path)
        print(
            f"calibration profile updated: {calibration_path} "
            f"(version {profile.version})",
            file=sys.stderr,
        )
    if args.plan_cache and cache is not None:
        cache.save()
    if args.output:
        with open(args.output, "w", encoding="ascii") as f:
            for node in sorted(result.labels):
                f.write(f"{node} {result.labels[node]}\n")
        print(f"labels written to {args.output}", file=sys.stderr)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = build_dataset(
        args.family,
        num_nodes=args.nodes,
        avg_degree=args.degree,
        scc_size=args.scc_size,
        scc_count=args.scc_count,
        seed=args.seed,
    )
    writer = write_edge_binary if args.binary else write_edge_text
    count = writer(args.output, graph.edges)
    print(
        f"{args.family}: {graph.num_nodes} nodes, {count} edges -> {args.output}",
        file=sys.stderr,
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    error = _check_executor(args.executor)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.autotune and args.algorithm not in ("Ext-SCC", "Ext-SCC-Op"):
        print(
            f"error: --autotune only applies to Ext-SCC variants, not "
            f"{args.algorithm}",
            file=sys.stderr,
        )
        return 2
    edges = _load_edges(args.input, args.binary)
    num_nodes = args.nodes or (1 + max(max(u, v) for u, v in edges))
    profile = (
        CalibrationProfile.load(args.calibration)
        if args.calibration and os.path.exists(args.calibration)
        else CalibrationProfile() if (args.calibration or args.autotune)
        else None
    )
    result = run_algorithm(
        args.algorithm,
        edges,
        num_nodes,
        memory_bytes=parse_size(args.memory),
        block_size=parse_size(args.block_size),
        io_budget=args.io_budget,
        workers=args.workers,
        executor=args.executor,
        autotune=args.autotune,
        calibration=profile,
        objective=args.objective,
        fault_policy=args.fault_policy,
        parity=args.parity,
    )
    print(
        f"{result.algorithm}: {result.status}  I/Os: {result.io_total} "
        f"(random {result.io_random})  wall: {result.wall_seconds:.2f}s  "
        f"sccs: {result.num_sccs}"
    )
    if result.autotune:
        a = result.autotune
        print(
            f"autotune[{a['objective']}]: codec={a['codec']} "
            f"workers={a['workers']} executor={a['executor']} "
            f"solver={a['solver']}  ({a['candidates']} candidates, "
            f"predicted {a['predicted_ios']:,} blk)"
        )
    top_phases = [
        label
        for label in ("recovery", "contraction", "semi-scc", "expansion")
        if label in result.phases
    ]
    if top_phases:
        breakdown = "  ".join(
            f"{label}: {result.phases[label].get('wall_seconds', 0.0):.2f}s"
            for label in top_phases
        )
        print(f"wall by phase: {breakdown}")
    if args.workers > 1:
        print(
            f"workers: {result.workers}  makespan: {result.makespan} "
            f"(speedup {result.parallel_speedup:.2f}x, per-channel "
            f"{result.channel_io})"
        )
    if (args.fault_policy is not None or args.parity
            or any(v for v in result.health.values())):
        print(_render_health(result.health))
        for event in result.health.get("events", ()):
            print(f"  degraded: {event}")
    return 0 if result.ok else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.analysis import arboricity_upper_bound, degree_stats
    from repro.graph.edge_file import EdgeFile
    from repro.io.blocks import BlockDevice
    from repro.io.memory import MemoryBudget

    edges = _load_edges(args.input, args.binary)
    device = BlockDevice(block_size=parse_size(args.block_size))
    memory = MemoryBudget(parse_size(args.memory))
    edge_file = EdgeFile.from_edges(device, "edges", edges)
    stats = degree_stats(edge_file, memory)
    print(f"nodes (touched): {stats.num_nodes}")
    print(f"edges:           {stats.num_edges}")
    print(f"avg degree:      {stats.average_degree:.2f}")
    print(f"max deg in/out:  {stats.max_in_degree}/{stats.max_out_degree} "
          f"(total {stats.max_total_degree})")
    print(f"sources/sinks:   {stats.num_sources}/{stats.num_sinks} "
          "(Type-1 candidates)")
    print(f"arboricity <=    {arboricity_upper_bound(stats)} "
          "(Chiba-Nishizeki bound)")
    if args.histogram:
        for degree in sorted(stats.histogram):
            print(f"  deg {degree:>5}: {stats.histogram[degree]}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.result import SCCResult
    from repro.graph.digraph import DiGraph
    from repro.memory_scc import tarjan_scc

    edges = _load_edges(args.input, args.binary)
    claimed_pairs = []
    with open(args.labels, "r", encoding="ascii") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                node, label = line.split()
                claimed_pairs.append((int(node), int(label)))
    claimed = SCCResult.from_pairs(claimed_pairs)
    graph = DiGraph(edges, nodes=list(claimed.labels))
    expected = SCCResult(tarjan_scc(graph))
    if claimed == expected:
        print(f"OK: {claimed.num_sccs} SCCs over {claimed.num_nodes} nodes "
              "match the reference recomputation")
        return 0
    mismatched = sum(
        1 for node in expected.labels
        if claimed.labels.get(node) != expected.labels[node]
    )
    print(f"MISMATCH: {mismatched} of {expected.num_nodes} node labels "
          f"disagree (claimed {claimed.num_sccs} SCCs, "
          f"expected {expected.num_sccs})", file=sys.stderr)
    return 1


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.analysis import plan_ext_scc

    plan = plan_ext_scc(
        args.nodes,
        args.edges,
        memory_bytes=parse_size(args.memory),
        block_size=parse_size(args.block_size),
        node_retention=args.node_retention,
        edge_growth=args.edge_growth,
    )
    print(plan.render())
    return 0 if plan.feasible else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import LabelStore, QueryDaemon, build_store

    if args.build:
        edges = _load_edges(args.build, args.binary)
        meta = build_store(
            edges,
            args.store,
            num_nodes=args.nodes or None,
            memory_bytes=parse_size(args.memory),
            block_size=parse_size(args.block_size),
        )
        print(
            f"store built: {meta['num_sccs']} SCCs over "
            f"{meta['num_nodes']} nodes -> {args.store} "
            f"({meta['scc_io']:,} block I/Os)",
            file=sys.stderr,
        )
        if args.build_only:
            return 0
    store = LabelStore(
        args.store,
        memory_bytes=parse_size(args.memory),
        cache_entries=args.cache,
    )
    daemon = QueryDaemon(
        store,
        host=args.host,
        port=args.port,
        epoch_seconds=args.epoch_ms / 1000.0,
        owns_store=True,
    )
    host, port = daemon.address[0], daemon.address[1]
    # Printed to stderr and flushed so a wrapper (or test) can scrape
    # the bound port before the first client connects.
    print(f"serving {args.store} on {host}:{port}", file=sys.stderr, flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.close()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service import ServiceClient

    if args.kind in ("same-component", "reachable") and len(args.args) != 2:
        print(f"error: {args.kind} takes exactly two node ids",
              file=sys.stderr)
        return 2
    if args.kind in ("scc-label", "topo-order") and not args.args:
        print(f"error: {args.kind} takes at least one node id",
              file=sys.stderr)
        return 2
    with ServiceClient(host=args.host, port=args.port) as client:
        needs_session = args.kind not in ("server-stats", "shutdown")
        if needs_session:
            client.open_session(args.tenant, io_budget=args.io_budget)
        if args.kind == "scc-label":
            nodes = [int(a) for a in args.args]
            for node, label in sorted(client.scc_label(nodes).items()):
                print(f"{node} {'-' if label is None else label}")
        elif args.kind == "same-component":
            u, v = (int(a) for a in args.args[:2])
            print("same" if client.same_component(u, v) else "different")
        elif args.kind == "reachable":
            u, v = (int(a) for a in args.args[:2])
            print("reachable" if client.reachable(u, v) else "unreachable")
        elif args.kind == "topo-order":
            nodes = [int(a) for a in args.args]
            for node, order in sorted(client.topo_order(nodes).items()):
                if order is None:
                    print(f"{node} -")
                else:
                    print(f"{node} component={order[0]} layer={order[1]}")
        elif args.kind == "stats":
            ledger = client.session_stats()
            io = ledger["io"]
            print(
                f"session {ledger['session']} tenant={ledger['tenant']}: "
                f"{ledger['queries']} queries, {ledger['lookups']} lookups "
                f"({ledger['cache_hits']} cache hits), "
                f"{io['total']} attributed block I/Os "
                f"(sequential {io['sequential']}, random {io['random']})"
            )
        elif args.kind == "server-stats":
            stats = client.server_stats()
            io = stats["physical_io"]
            label_report = stats["scc_label"]
            print(
                f"physical I/O: {io['total']} blocks "
                f"(sequential {io['sequential']}, random {io['random']})"
            )
            print(
                f"scc-label: {label_report['batch_lookups']} batched lookups "
                f"in {label_report['batch_block_reads']} block reads, "
                f"label-cache hit rate "
                f"{label_report['label_cache_hit_rate']:.2f}"
            )
            print(
                f"sessions: {stats['sessions']['open_sessions']} open, "
                f"{stats['sessions']['queries']} queries, "
                f"{stats['sessions']['throttled']} throttled"
            )
        elif args.kind == "shutdown":
            client.shutdown()
            print("shutdown acknowledged", file=sys.stderr)
        if args.trace_json and needs_session:
            payload = {
                "session": client.session_stats(),
                "server": client.server_stats(),
            }
            with open(args.trace_json, "w", encoding="ascii") as f:
                _json.dump(payload, f, indent=1)
            print(
                f"session trace written to {args.trace_json}", file=sys.stderr
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Contract & Expand: I/O efficient external SCC computation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scc = sub.add_parser("scc", help="compute all SCCs of an edge-list file")
    scc.add_argument("input", help="edge list: 'u v' per line (or --binary)")
    scc.add_argument("--output", "-o", help="write 'node scc' labels here")
    scc.add_argument("--nodes", type=int, default=0,
                     help="node count (nodes are 0..N-1; default: derive from edges)")
    scc.add_argument("--memory", "-m", default="1M", help="memory budget (e.g. 512K)")
    scc.add_argument("--block-size", "-b", default="4K", help="disk block size")
    scc.add_argument("--algorithm", choices=["ext-scc", "ext-scc-op"],
                     default="ext-scc-op")
    scc.add_argument("--binary", action="store_true", help="input is packed <II")
    scc.add_argument("--verbose", "-v", action="store_true",
                     help="print per-iteration contraction progress")
    scc.add_argument("--workers", type=_positive_int, default=1,
                     help="shard/channel width K: stripe the simulated disk "
                          "over K channels and shard sorts/scans K ways "
                          "(same total I/O, reported makespan shrinks)")
    scc.add_argument("--explain", action="store_true",
                     help="print the optimized operator plan (per-operator "
                          "predicted I/Os) and the analytic schedule, then "
                          "exit without running")
    scc.add_argument("--trace-json", metavar="PATH",
                     help="after the run, dump the per-operator execution "
                          "trace (predicted vs. measured I/Os per plan "
                          "stage) as JSON to PATH")
    scc.add_argument("--solver", choices=sorted(SEMI_SCC_SOLVERS),
                     default=None,
                     help="semi-external SCC solver for the contracted "
                          "graph (default: the config's spanning-tree; "
                          "all registered solvers produce identical "
                          "canonical labels)")
    scc.add_argument("--executor", choices=list(EXECUTOR_BACKENDS),
                     default="serial",
                     help="worker-pool backend (serial is deterministic "
                          "and default; threads uses real threads; "
                          "processes adds worker processes for pure-CPU "
                          "kernels — rejected when the platform cannot "
                          "fork/spawn)")
    scc.add_argument("--checkpoint-dir",
                     help="journal phase boundaries in this directory "
                          "(a persistent device) so a crashed run can be "
                          "resumed")
    scc.add_argument("--resume", action="store_true",
                     help="continue a crashed run from the journal in "
                          "--checkpoint-dir instead of starting over")
    scc.add_argument("--autotune", action="store_true",
                     help="let the cost-based optimizer pick codec, worker "
                          "count K, executor, and semi-external solver by "
                          "pricing every combination against the "
                          "calibrated cost model before running")
    scc.add_argument("--objective", choices=list(OBJECTIVES), default="io",
                     help="what --autotune minimizes: predicted block "
                          "I/Os (io, default) or predicted wall-seconds "
                          "(wallclock, needs a calibration profile to "
                          "differ from io)")
    scc.add_argument("--calibration", metavar="PATH",
                     help="calibration profile JSON to price candidates "
                          "with; updated from this run's measurements "
                          "afterwards (default: calibration.json inside "
                          "--checkpoint-dir when one is given)")
    scc.add_argument("--plan-cache", metavar="PATH",
                     help="persistent plan cache: repeated --autotune "
                          "queries with the same graph shape, budget, and "
                          "calibration version skip the knob search")
    scc.add_argument("--fault-policy", type=_fault_policy, default=None,
                     metavar="SPEC",
                     help="retry/backoff policy for transient storage "
                          "faults as key=value pairs, e.g. "
                          "'retries=5,backoff=0.002,factor=2,jitter=0.1,"
                          "seed=7,deadline=1.0,timeout=30' "
                          "(default policy: 3 retries, exponential "
                          "backoff with deterministic jitter)")
    scc.add_argument("--parity", action="store_true",
                     help="keep a RAID-5-style XOR parity channel next to "
                          "the data channels so a single channel outage "
                          "or checksum-failed block is read-repaired in "
                          "flight (in-memory striped device only; not "
                          "compatible with --checkpoint-dir)")
    scc.set_defaults(func=_cmd_scc)

    gen = sub.add_parser("generate", help="generate a Table I / webspam dataset")
    gen.add_argument("family",
                     choices=["massive-scc", "large-scc", "small-scc", "webspam"])
    gen.add_argument("output")
    gen.add_argument("--nodes", type=int, default=None)
    gen.add_argument("--degree", type=float, default=None)
    gen.add_argument("--scc-size", type=int, default=None)
    gen.add_argument("--scc-count", type=int, default=None)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--binary", action="store_true")
    gen.set_defaults(func=_cmd_generate)

    bench = sub.add_parser("bench", help="run one algorithm, report the I/O ledger")
    bench.add_argument("input")
    bench.add_argument("--algorithm", "-a", choices=sorted(ALGORITHMS),
                       default="Ext-SCC-Op")
    bench.add_argument("--nodes", type=int, default=0)
    bench.add_argument("--memory", "-m", default="1M")
    bench.add_argument("--block-size", "-b", default="4K")
    bench.add_argument("--io-budget", type=int, default=None,
                       help="block-I/O cap; exceeded -> INF (exit 1)")
    bench.add_argument("--workers", type=_positive_int, default=1,
                       help="shard/channel width K for Ext-SCC runs")
    bench.add_argument("--executor", choices=list(EXECUTOR_BACKENDS),
                       default="serial",
                       help="worker-pool backend for Ext-SCC runs "
                            "(processes is rejected when the platform "
                            "cannot fork/spawn)")
    bench.add_argument("--binary", action="store_true")
    bench.add_argument("--autotune", action="store_true",
                       help="let the optimizer pick codec/K/executor/"
                            "solver for Ext-SCC runs (overrides --workers "
                            "and --executor)")
    bench.add_argument("--objective", choices=list(OBJECTIVES), default="io",
                       help="autotune objective: predicted I/Os or "
                            "predicted wall-seconds")
    bench.add_argument("--calibration", metavar="PATH",
                       help="calibration profile JSON for autotune pricing")
    bench.add_argument("--fault-policy", type=_fault_policy, default=None,
                       metavar="SPEC",
                       help="retry/backoff policy for transient storage "
                            "faults (key=value pairs; see scc "
                            "--fault-policy)")
    bench.add_argument("--parity", action="store_true",
                       help="keep a RAID-5 parity channel on the striped "
                            "device (forces striping even for K=1)")
    bench.set_defaults(func=_cmd_bench)

    stats = sub.add_parser("stats", help="degree/structure statistics")
    stats.add_argument("input")
    stats.add_argument("--memory", "-m", default="1M")
    stats.add_argument("--block-size", "-b", default="4K")
    stats.add_argument("--histogram", action="store_true",
                       help="print the full degree histogram")
    stats.add_argument("--binary", action="store_true")
    stats.set_defaults(func=_cmd_stats)

    verify = sub.add_parser("verify",
                            help="check a labels file against a recomputation")
    verify.add_argument("input", help="the edge list the labels refer to")
    verify.add_argument("labels", help="a 'node scc' labels file (from scc -o)")
    verify.add_argument("--binary", action="store_true")
    verify.set_defaults(func=_cmd_verify)

    explain = sub.add_parser(
        "explain", help="predict an Ext-SCC run's iterations and I/O"
    )
    explain.add_argument("--nodes", type=_count, required=True)
    explain.add_argument("--edges", type=_count, required=True)
    explain.add_argument("--memory", "-m", default="1M")
    explain.add_argument("--block-size", "-b", default="4K")
    explain.add_argument("--node-retention", type=float, default=0.72)
    explain.add_argument("--edge-growth", type=float, default=1.25)
    explain.set_defaults(func=_cmd_explain)

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant query daemon over a persisted label store",
    )
    serve.add_argument("store", help="label-store directory (see --build)")
    serve.add_argument("--build", metavar="INPUT",
                       help="edge-list file: compute SCCs and (re)build the "
                            "store in STORE before serving")
    serve.add_argument("--build-only", action="store_true",
                       help="with --build: exit after building, don't serve")
    serve.add_argument("--nodes", type=int, default=0,
                       help="node count for --build (default: derive)")
    serve.add_argument("--memory", "-m", default="1M",
                       help="memory budget for building and serving")
    serve.add_argument("--block-size", "-b", default="4K",
                       help="disk block size for --build")
    serve.add_argument("--binary", action="store_true",
                       help="--build input is packed <II")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 picks a free one; the bound "
                            "address is printed to stderr)")
    serve.add_argument("--epoch-ms", type=float, default=5.0,
                       help="batching epoch: concurrent lookups arriving "
                            "within this window share block reads")
    serve.add_argument("--cache", type=int, default=4096,
                       help="LRU label-cache entries per table (0 disables)")
    serve.set_defaults(func=_cmd_serve)

    query = sub.add_parser(
        "query", help="one client round trip against a running daemon"
    )
    query.add_argument("kind",
                       choices=["scc-label", "same-component", "reachable",
                                "topo-order", "stats", "server-stats",
                                "shutdown"])
    query.add_argument("args", nargs="*",
                       help="node ids (scc-label/topo-order take N, "
                            "same-component/reachable take exactly 2)")
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, required=True)
    query.add_argument("--tenant", default="default",
                       help="tenant name for the session ledger")
    query.add_argument("--io-budget", type=int, default=None,
                       help="attributed block-I/O cap for this session; a "
                            "batch that would cross it is throttled "
                            "without performing any I/O")
    query.add_argument("--trace-json", metavar="PATH",
                       help="dump the session ledger + server stats as "
                            "JSON to PATH before closing the session")
    query.set_defaults(func=_cmd_query)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except RetryExhaustedError as exc:
        # Exit 5: the retry budget ran dry on a persistent transient
        # fault.  Distinct from plain storage misuse so wrappers can
        # re-queue the run.
        print(f"error: {exc}", file=sys.stderr)
        print(
            "retries exhausted: raise the budget (--fault-policy "
            "retries=N[,deadline=SECONDS]) or investigate the failing "
            "channel; with --checkpoint-dir the journal is durable, so "
            "rerunning with --resume continues from the last phase "
            "boundary",
            file=sys.stderr,
        )
        return 5
    except CorruptBlockError as exc:
        # Exit 4: a block failed its checksum and could not be repaired.
        print(f"error: {exc}", file=sys.stderr)
        print(
            "unrecoverable corrupt block: rerun with --parity to "
            "read-repair single-block damage in flight, or restore from "
            "a --checkpoint-dir journal with --resume",
            file=sys.stderr,
        )
        return 4
    except StorageError as exc:
        # Exit 3: storage-layer failure (missing file, capacity misuse,
        # channel fault outside the retry machinery).
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
