"""Benchmark harness: run any of the four algorithms on a workload and
collect the two quantities the paper plots — wall time and block I/Os —
with INF/NONTERM statuses handled the way the paper's 24-hour cutoff is.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.calibration import CalibrationProfile
from repro.analysis.planner import TuningDecision, autotune_config
from repro.baselines import dfs_scc, em_scc
from repro.core import ExtSCC, ExtSCCConfig
from repro.exceptions import InsufficientMemory, IOBudgetExceeded, NonTermination
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice
from repro.io.memory import MemoryBudget
from repro.io.parallel import MakespanMeter, StripedDevice
from repro.io.stats import IOBudget
from repro.plan import PlanCache, TraceLedger
from repro.semi_external import spanning_tree_scc

if TYPE_CHECKING:  # pragma: no cover
    from repro.recovery.fault import FaultSchedule
    from repro.recovery.policy import FaultPolicy

__all__ = ["RunResult", "Sweep", "run_algorithm", "run_sweep", "ALGORITHMS"]

Edge = Tuple[int, int]

STATUS_OK = "OK"
STATUS_INF = "INF"
STATUS_NONTERM = "NONTERM"
STATUS_NOMEM = "NOMEM"


@dataclass
class RunResult:
    """One algorithm on one workload point."""

    algorithm: str
    x: object
    status: str
    io_total: int = 0
    io_random: int = 0
    io_sequential: int = 0
    wall_seconds: float = 0.0
    num_sccs: Optional[int] = None
    iterations: Optional[int] = None
    merge_passes: int = 0
    runs_formed: int = 0
    records_written: int = 0
    bytes_logical: int = 0
    bytes_stored: int = 0
    width_profile: Dict[int, float] = field(default_factory=dict)
    # per-phase counters, plus the float "wall_seconds" measurement
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)
    workers: int = 1
    makespan: int = 0
    channel_io: List[int] = field(default_factory=list)
    trace: Dict[str, Dict[str, int]] = field(default_factory=dict)
    trace_predicted: int = 0
    trace_measured: int = 0
    # the autotuner's decision summary (chosen knobs, predicted prices,
    # cache hit/miss counters) — empty on static runs
    autotune: Dict[str, object] = field(default_factory=dict)
    # fault-tolerance ledger delta of the run (retries, repairs,
    # redispatches, parity writes, backoff seconds, degradation events)
    # — all zeros/empty on a fault-free run
    health: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the run finished within budget."""
        return self.status == STATUS_OK

    @property
    def parallel_speedup(self) -> float:
        """``io_total / makespan`` — critical-path speedup of the striped
        run (1.0 when unstriped, serial, or failed)."""
        if not self.ok or not self.makespan:
            return 1.0
        return self.io_total / self.makespan

    @property
    def compression_ratio(self) -> float:
        """Logical payload bytes over stored bytes (1.0 = uncompressed)."""
        if self.bytes_stored == 0:
            return 1.0
        return self.bytes_logical / self.bytes_stored

    @property
    def bytes_per_record(self) -> float:
        """Average stored bytes per payload record written."""
        if self.records_written == 0:
            return 0.0
        return self.bytes_stored / self.records_written

    def cell(self, metric: str = "io") -> str:
        """Render one table cell the way the paper's plots label points."""
        if self.status != STATUS_OK:
            return self.status if self.status != STATUS_INF else "INF"
        if metric == "io":
            return f"{self.io_total:,}"
        if metric == "time":
            return f"{self.wall_seconds:.2f}s"
        if metric == "random":
            return f"{self.io_random:,}"
        if metric == "makespan":
            return f"{self.makespan:,}"
        raise ValueError(f"unknown metric {metric!r}")


def _run_ext(config: ExtSCCConfig,
             calibration: Optional[CalibrationProfile] = None,
             tuning: Optional[TuningDecision] = None):
    def runner(device: BlockDevice, edges: EdgeFile, nodes: NodeFile,
               memory: MemoryBudget) -> Tuple[int, Optional[int], Optional[TraceLedger]]:
        output = ExtSCC(config, calibration=calibration).run(
            device, edges, memory, nodes=nodes, tuning=tuning
        )
        return output.result.num_sccs, output.num_iterations, output.trace
    return runner


def _run_dfs(device: BlockDevice, edges: EdgeFile, nodes: NodeFile,
             memory: MemoryBudget) -> Tuple[int, Optional[int], Optional[TraceLedger]]:
    output = dfs_scc(device, edges, nodes, memory)
    return output.result.num_sccs, None, None


def _run_em(device: BlockDevice, edges: EdgeFile, nodes: NodeFile,
            memory: MemoryBudget) -> Tuple[int, Optional[int], Optional[TraceLedger]]:
    trace = TraceLedger()
    output = em_scc(device, edges, nodes, memory, trace=trace)
    return output.result.num_sccs, output.iterations, trace


def _run_semi(device: BlockDevice, edges: EdgeFile, nodes: NodeFile,
              memory: MemoryBudget) -> Tuple[int, Optional[int], Optional[TraceLedger]]:
    labels = spanning_tree_scc(edges, nodes.scan(), memory=memory)
    return len(set(labels.values())), None, None


ALGORITHMS: Dict[str, Callable] = {
    "Ext-SCC": _run_ext(ExtSCCConfig.baseline()),
    "Ext-SCC-Op": _run_ext(ExtSCCConfig.optimized()),
    "DFS-SCC": _run_dfs,
    "EM-SCC": _run_em,
    "Semi-SCC": _run_semi,
}
"""The paper's four compared algorithms plus the semi-external substrate."""


def run_algorithm(
    name: str,
    edges: Sequence[Edge],
    num_nodes: int,
    memory_bytes: int,
    block_size: int = 1024,
    io_budget: Optional[int] = None,
    x: object = None,
    config: Optional[ExtSCCConfig] = None,
    workers: int = 1,
    executor: str = "serial",
    autotune: bool = False,
    calibration: Optional[CalibrationProfile] = None,
    plan_cache: Optional[PlanCache] = None,
    objective: Optional[str] = None,
    fault_policy: Optional["FaultPolicy"] = None,
    fault_schedule: Optional["FaultSchedule"] = None,
    parity: bool = False,
) -> RunResult:
    """Run one algorithm on a fresh simulated disk.

    Args:
        name: key into :data:`ALGORITHMS` (ignored when ``config`` given —
            then an Ext-SCC variant with that config runs under ``name``).
        edges: the workload's edges, in on-disk order.
        num_nodes: nodes are ``0 .. num_nodes - 1``.
        memory_bytes: the budget ``M``.
        block_size: the block size ``B``.
        io_budget: block-I/O cap; exceeding it reports ``INF``.
        x: the sweep coordinate to record.
        workers: shard/channel width ``K``.  ``K > 1`` runs on a
            :class:`~repro.io.parallel.StripedDevice` with ``K`` channels
            and threads ``workers`` into the Ext-SCC config, so the run
            reports a makespan alongside the (unchanged) total ledger.
        executor: worker-pool backend for Ext-SCC runs (``"serial"``
            keeps the benchmark deterministic; makespan is a property of
            the striping, not of the backend).
        autotune: let the cost-based optimizer choose codec, workers,
            executor, and solver for an Ext-SCC run (``workers`` /
            ``executor`` args are then the search's to override);
            ``result.autotune`` records the decision.
        calibration: fitted cost constants for the search.
        plan_cache: optional decision cache (hit/miss counters land in
            ``result.autotune["cache"]``).
        objective: autotune objective override (``"io"`` /
            ``"wallclock"``).
        fault_policy: retry/backoff policy for transient faults; the
            device default applies when ``None``.
        fault_schedule: deterministic fault injection schedule (chaos
            benchmarking); attached to the device before the input loads
            so fault ordinals are stable across runs.
        parity: keep a RAID-5 parity channel on the striped device
            (forces striping even for ``workers == 1``).

    Returns:
        A populated :class:`RunResult`.
    """
    tuning: Optional[TuningDecision] = None
    if autotune:
        base = config if config is not None else (
            ExtSCCConfig.optimized() if name == "Ext-SCC-Op"
            else ExtSCCConfig.baseline()
        )
        if objective is not None:
            base = replace(base, objective=objective)
        tuning = autotune_config(
            num_nodes, len(edges), memory_bytes, block_size, config=base,
            profile=calibration, cache=plan_cache,
        )
        config = tuning.config(base)
        workers, executor = config.workers, config.executor
        runner = _run_ext(config, calibration, tuning)
    elif config is not None:
        runner = _run_ext(replace(config, workers=workers, executor=executor),
                          calibration)
    elif name in ("Ext-SCC", "Ext-SCC-Op") and (workers > 1 or executor != "serial"):
        base = (
            ExtSCCConfig.optimized() if name == "Ext-SCC-Op"
            else ExtSCCConfig.baseline()
        )
        runner = _run_ext(replace(base, workers=workers, executor=executor))
    else:
        runner = ALGORITHMS[name]
    if workers > 1 or parity:
        device: BlockDevice = StripedDevice(
            block_size=block_size, channels=max(workers, 1), parity=parity
        )
    else:
        device = BlockDevice(block_size=block_size)
    if fault_policy is not None:
        device.attach_policy(fault_policy)
    if fault_schedule is not None:
        fault_schedule.attach(device)
    memory = MemoryBudget(memory_bytes)
    edge_file = EdgeFile.from_edges(device, "bench-edges", edges)
    node_file = NodeFile.from_ids(
        device, "bench-nodes", range(num_nodes), memory, presorted=True
    )
    if io_budget is not None:
        # The cutoff applies to the algorithm's work, not to loading the
        # input (the paper's 24h clock starts with the algorithm).
        device.stats.budget = IOBudget(device.stats.total + io_budget)
    result = RunResult(algorithm=name, x=x, status=STATUS_OK, workers=workers)
    start = time.perf_counter()
    baseline = device.stats.snapshot()
    meter = MakespanMeter(device)  # same window as the io_total delta
    trace: Optional[TraceLedger] = None
    try:
        result.num_sccs, result.iterations, trace = runner(
            device, edge_file, node_file, memory
        )
    except IOBudgetExceeded:
        result.status = STATUS_INF
    except NonTermination:
        result.status = STATUS_NONTERM
    except InsufficientMemory:
        result.status = STATUS_NOMEM
    result.wall_seconds = time.perf_counter() - start
    result.makespan = meter.makespan()
    result.channel_io = meter.channel_snapshot()
    delta = device.stats.snapshot() - baseline
    result.io_total = delta.total
    result.io_random = delta.random
    result.io_sequential = delta.sequential
    result.merge_passes = device.stats.merge_passes
    result.runs_formed = device.stats.runs_formed
    result.records_written = device.stats.records_written
    result.bytes_logical = device.stats.bytes_logical
    result.bytes_stored = device.stats.bytes_stored
    result.width_profile = {
        width: stored / count
        for width, (count, stored) in device.stats.bytes_by_width.items()
        if count
    }
    empty_bytes = (0, 0, 0)
    result.phases = {
        label: {
            "io_total": snap.total,
            "io_sequential": snap.sequential,
            "io_random": snap.random,
            "merge_passes": device.stats.passes_by_phase.get(label, 0),
            "runs_formed": device.stats.runs_by_phase.get(label, 0),
            "records_written": records,
            "bytes_logical": logical,
            "bytes_stored": stored,
            # Host wall-clock (float seconds) — reported alongside the
            # simulated counters but never compared by regression gates.
            "wall_seconds": device.stats.seconds_by_phase.get(label, 0.0),
        }
        for label, snap in device.stats.by_phase.items()
        for records, logical, stored in (
            device.stats.bytes_by_phase.get(label, empty_bytes),
        )
    }
    # Fresh device per run, so the full health ledger *is* the run's
    # delta — and it covers input loading, where scheduled faults may
    # already fire.
    result.health = device.stats.health.snapshot()
    if trace is not None and trace.spans:
        result.trace = trace.by_phase()
        result.trace_predicted = trace.total_predicted
        result.trace_measured = trace.total_measured
    if tuning is not None:
        chosen = tuning.chosen
        result.autotune = {
            "objective": tuning.objective,
            "codec": chosen.codec,
            "workers": chosen.workers,
            "executor": chosen.executor,
            "solver": chosen.solver,
            "predicted_ios": chosen.predicted_ios,
            "predicted_makespan": chosen.predicted_makespan,
            "predicted_seconds": chosen.predicted_seconds,
            "candidates": len(tuning.candidates),
            "cache_hit": tuning.cache_hit,
            "planning_seconds": tuning.planning_seconds,
            "calibration": tuning.calibration_version,
        }
        if plan_cache is not None:
            result.autotune["cache"] = plan_cache.stats()
    return result


@dataclass
class Sweep:
    """All runs of one figure: a grid of (x value, algorithm)."""

    title: str
    x_label: str
    runs: List[RunResult] = field(default_factory=list)

    @property
    def algorithms(self) -> List[str]:
        """Algorithm names in first-appearance order."""
        seen: List[str] = []
        for run in self.runs:
            if run.algorithm not in seen:
                seen.append(run.algorithm)
        return seen

    @property
    def x_values(self) -> List[object]:
        """Sweep coordinates in first-appearance order."""
        seen: List[object] = []
        for run in self.runs:
            if run.x not in seen:
                seen.append(run.x)
        return seen

    def series(self, algorithm: str) -> List[RunResult]:
        """All runs of one algorithm, in sweep order."""
        return [r for r in self.runs if r.algorithm == algorithm]

    def result(self, algorithm: str, x: object) -> RunResult:
        """The run at one grid point."""
        for run in self.runs:
            if run.algorithm == algorithm and run.x == x:
                return run
        raise KeyError((algorithm, x))


def run_sweep(
    title: str,
    x_label: str,
    points: Sequence[Tuple[object, Sequence[Edge], int, int]],
    algorithms: Sequence[str],
    block_size: int = 1024,
    io_budget: Optional[int] = None,
    workers: int = 1,
    executor: str = "serial",
) -> Sweep:
    """Run every algorithm at every sweep point.

    Args:
        title: figure title (e.g. ``"Fig 7(b) WEBSPAM: I/Os vs memory"``).
        x_label: name of the sweep coordinate.
        points: ``(x, edges, num_nodes, memory_bytes)`` tuples.
        algorithms: keys into :data:`ALGORITHMS`.
        block_size: the block size ``B``.
        io_budget: per-run I/O cap (the INF cutoff).
        workers: shard/channel width ``K`` for every run.
        executor: worker-pool backend for Ext-SCC runs.
    """
    sweep = Sweep(title=title, x_label=x_label)
    for x, edges, num_nodes, memory_bytes in points:
        for name in algorithms:
            sweep.runs.append(
                run_algorithm(
                    name, edges, num_nodes, memory_bytes,
                    block_size=block_size, io_budget=io_budget, x=x,
                    workers=workers, executor=executor,
                )
            )
    return sweep
