"""Benchmark harness reproducing the paper's evaluation (Figures 6–9)."""

from repro.bench.harness import (
    ALGORITHMS,
    RunResult,
    Sweep,
    run_algorithm,
    run_sweep,
)
from repro.bench.reporting import (
    ascii_chart,
    format_scaling_table,
    format_sweep,
    format_trace,
    print_sweep,
    shape_summary,
    sweep_to_json,
)
from repro.bench.recovery import (
    RecoveryReport,
    RecoveryTrial,
    measure_recovery,
    render_recovery_report,
)
from repro.bench.regression import SweepComparison, compare_files, compare_sweeps
from repro.bench.workloads import (
    BENCH_NODES,
    DEFAULT_MEMORY_RATIO,
    BLOCK_SIZE,
    MEMORY_RATIOS,
    WEBSPAM_MEMORY_RATIOS,
    family_graph,
    memory_for_ratio,
    semi_threshold,
    shuffled_edges,
    subsample_edges,
    webspam_graph,
)

__all__ = [
    "ALGORITHMS",
    "RunResult",
    "Sweep",
    "run_algorithm",
    "run_sweep",
    "format_sweep",
    "format_scaling_table",
    "format_trace",
    "ascii_chart",
    "print_sweep",
    "shape_summary",
    "sweep_to_json",
    "BENCH_NODES",
    "DEFAULT_MEMORY_RATIO",
    "compare_sweeps",
    "compare_files",
    "SweepComparison",
    "RecoveryReport",
    "RecoveryTrial",
    "measure_recovery",
    "render_recovery_report",
    "BLOCK_SIZE",
    "MEMORY_RATIOS",
    "WEBSPAM_MEMORY_RATIOS",
    "family_graph",
    "memory_for_ratio",
    "semi_threshold",
    "shuffled_edges",
    "subsample_edges",
    "webspam_graph",
]
