"""Recovery-overhead benchmark: what crash-consistency costs and buys.

Two quantities frame the checkpoint/resume subsystem:

* **Overhead when nothing crashes** — the I/O ledger of a checkpointed
  uninterrupted run versus the plain run.  Journal commits happen at
  phase boundaries and write only to the device manifest (host-FS work,
  not simulated block I/O), so the designed overhead is exactly zero.
* **Repaid work after a crash** — for a crash scheduled inside each
  pipeline phase, how much of the run had to be re-executed after
  resuming from the journal (``resume_io - recovery_io``), against the
  bound that resume never re-pays more than the uninterrupted run still
  had ahead of it when the interrupted phase began.

:func:`measure_recovery` sweeps one crash point through every phase
(each contraction level, the semi-external solve, each expansion level,
the final scan) — the same crash matrix the property tests assert — and
returns a :class:`RecoveryReport` that :func:`render_recovery_report`
formats as the paper-style text table the benchmark persists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.config import ExtSCCConfig
from repro.core.ext_scc import ExtSCC, ExtSCCOutput
from repro.exceptions import SimulatedCrash
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget
from repro.recovery import CheckpointManager, FaultInjector

__all__ = [
    "RecoveryTrial",
    "RecoveryReport",
    "measure_recovery",
    "render_recovery_report",
]

Edge = Tuple[int, int]


@dataclass
class RecoveryTrial:
    """One crash point: where it hit and what resuming cost."""

    phase: str
    crash_ordinal: int
    recovery_io: int
    resume_io: int
    labels_match: bool
    bound: int
    """I/O the uninterrupted run still had ahead of it at phase start —
    the contract ceiling on :attr:`repaid`."""

    @property
    def repaid(self) -> int:
        """Re-executed pipeline work: resume I/O minus validation reads."""
        return self.resume_io - self.recovery_io

    @property
    def within_bound(self) -> bool:
        """True when the resume honoured the never-re-pay-more contract."""
        return self.repaid <= self.bound


@dataclass
class RecoveryReport:
    """The crash matrix of one workload plus the zero-overhead headline."""

    baseline_io: int
    checkpointed_io: int
    num_sccs: int
    trials: List[RecoveryTrial] = field(default_factory=list)

    @property
    def overhead(self) -> int:
        """Extra I/Os charged by journaling on an uninterrupted run."""
        return self.checkpointed_io - self.baseline_io

    @property
    def all_labels_match(self) -> bool:
        """True when every resumed run reproduced the baseline labels."""
        return all(trial.labels_match for trial in self.trials)

    @property
    def all_within_bound(self) -> bool:
        """True when no resume re-paid more than its phase bound."""
        return all(trial.within_bound for trial in self.trials)


def _load(device: BlockDevice, edges: Sequence[Edge], num_nodes: int,
          memory_bytes: int) -> Tuple[EdgeFile, NodeFile, MemoryBudget]:
    memory = MemoryBudget(memory_bytes)
    edge_file = EdgeFile.from_edges(device, "input-edges", edges)
    node_file = NodeFile.from_ids(
        device, "input-nodes", range(num_nodes), memory, presorted=True
    )
    return edge_file, node_file, memory


def _phase_schedule(device: BlockDevice,
                    out: ExtSCCOutput) -> List[Tuple[str, int, int]]:
    """``(label, start ordinal, size)`` per pipeline phase, in run order."""
    schedule: List[Tuple[str, int, int]] = []
    cursor = 0
    for record in out.iterations:
        schedule.append((f"contract-{record.level}", cursor, record.io.total))
        cursor += record.io.total
    schedule.append(("semi-scc", cursor, out.semi_io.total))
    cursor += out.semi_io.total
    for record in reversed(out.iterations):
        label = f"expand-{record.level}"
        size = device.stats.phase_total(label)
        schedule.append((label, cursor, size))
        cursor += size
    schedule.append(("final-scan", cursor, out.io.total - cursor))
    return schedule


def measure_recovery(
    edges: Sequence[Edge],
    num_nodes: int,
    memory_bytes: int,
    block_size: int = 64,
    config: Optional[ExtSCCConfig] = None,
) -> RecoveryReport:
    """Run the crash matrix on one workload and report the costs.

    Args:
        edges: the workload's edges, in on-disk order.
        num_nodes: nodes are ``0 .. num_nodes - 1``.
        memory_bytes: the budget ``M``.
        block_size: the block size ``B``.
        config: pipeline configuration.  Defaults to the baseline with
            ``pool_readahead=1`` so crash ordinals land exactly at the
            phase boundaries the schedule computes.
    """
    if config is None:
        config = ExtSCCConfig.baseline(pool_readahead=1)

    # Plain uninterrupted run: the I/O floor and the reference labels.
    device = BlockDevice(block_size=block_size)
    edge_file, node_file, memory = _load(device, edges, num_nodes, memory_bytes)
    baseline = ExtSCC(config).run(device, edge_file, memory, nodes=node_file)
    schedule = _phase_schedule(device, baseline)

    # Checkpointed uninterrupted run: must charge exactly the same I/Os.
    ck_device = BlockDevice(block_size=block_size)
    edge_file, node_file, memory = _load(
        ck_device, edges, num_nodes, memory_bytes
    )
    checkpointed = ExtSCC(config).run(
        ck_device, edge_file, memory, nodes=node_file,
        checkpoint=CheckpointManager(ck_device),
    )

    report = RecoveryReport(
        baseline_io=baseline.io.total,
        checkpointed_io=checkpointed.io.total,
        num_sccs=baseline.result.num_sccs,
    )
    for label, start, size in schedule:
        ordinal = start + size // 2 + 1  # strictly inside the phase
        trial_device = BlockDevice(block_size=block_size)
        edge_file, node_file, memory = _load(
            trial_device, edges, num_nodes, memory_bytes
        )
        FaultInjector(crash_at_io=ordinal).attach(trial_device)
        try:
            ExtSCC(config).run(
                trial_device, edge_file, memory, nodes=node_file,
                checkpoint=CheckpointManager(trial_device),
            )
            raise RuntimeError(f"crash at {ordinal} in {label} never fired")
        except SimulatedCrash:
            pass
        trial_device.attach_injector(None)
        edge_file = EdgeFile(ExternalFile.open(trial_device, "input-edges"))
        node_file = NodeFile(ExternalFile.open(trial_device, "input-nodes"))
        resumed = ExtSCC(config).run(
            trial_device, edge_file, memory, nodes=node_file,
            checkpoint=CheckpointManager(trial_device),
        )
        report.trials.append(RecoveryTrial(
            phase=label,
            crash_ordinal=ordinal,
            recovery_io=resumed.recovery_io.total,
            resume_io=resumed.io.total,
            labels_match=resumed.result == baseline.result,
            bound=baseline.io.total - start,
        ))
    return report


def render_recovery_report(report: RecoveryReport) -> str:
    """The crash matrix as a text table, headed by the overhead verdict."""
    header = ["crashed in", "crash@", "recovery", "resume", "repaid",
              "bound", "repaid/run", "labels"]
    rows: List[List[str]] = [header]
    for trial in report.trials:
        rows.append([
            trial.phase,
            f"{trial.crash_ordinal:,}",
            f"{trial.recovery_io:,}",
            f"{trial.resume_io:,}",
            f"{trial.repaid:,}",
            f"{trial.bound:,}",
            f"{trial.repaid / report.baseline_io:.1%}",
            "match" if trial.labels_match else "DIFFER",
        ])
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = [
        "Recovery overhead  —  checkpoint/resume under the crash matrix",
        f"uninterrupted run:          {report.baseline_io:,} I/Os, "
        f"{report.num_sccs:,} SCCs",
        f"with checkpointing enabled: {report.checkpointed_io:,} I/Os "
        f"(overhead {report.overhead:+,})",
        "",
    ]
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    lines.append("")
    lines.append(
        "repaid = resume - recovery (re-executed pipeline work); the bound "
        "is the I/O the"
    )
    lines.append(
        "uninterrupted run still had ahead of it when the crashed phase "
        "began."
    )
    return "\n".join(lines)
