"""Rendering sweeps as the rows/series the paper's figures report,
including a log-scale ASCII chart approximating the figures themselves and
a JSON export for downstream plotting."""

from __future__ import annotations

import json
import math
from typing import List, Optional

from repro.bench.harness import RunResult, Sweep

__all__ = ["format_sweep", "print_sweep", "shape_summary", "ascii_chart",
           "sweep_to_json", "format_phase_table", "format_scaling_table",
           "format_trace"]


def format_phase_table(run: RunResult) -> str:
    """Per-phase breakdown of one run: I/Os, merge passes, runs formed.

    Phase labels nest (``contraction`` contains ``contract-1``,
    ``contract-2``, …; ``expansion`` contains ``expand-i``), so the
    top-level rows sum the per-level rows below them.  The pass counts come
    from :attr:`repro.io.stats.IOStats.passes_by_phase` — they are how the
    run-formation strategies are compared level by level.  The last three
    columns show what the codec bought per phase (logical over stored
    payload bytes, stored bytes per record) and the host wall-clock seconds
    the phase took — the one measured (non-simulated) column.
    """

    def _ratio(logical: int, stored: int) -> str:
        return f"{logical / stored:.2f}" if stored else "-"

    def _per_record(stored: int, records: int) -> str:
        return f"{stored / records:.2f}" if records else "-"

    header = ["phase", "io_total", "seq", "rand", "merge_passes",
              "runs_formed", "compression_ratio", "bytes_per_record",
              "wall_s"]
    rows: List[List[str]] = [header]
    for label in sorted(run.phases):
        p = run.phases[label]
        rows.append([
            label,
            f"{p['io_total']:,}",
            f"{p['io_sequential']:,}",
            f"{p['io_random']:,}",
            str(p["merge_passes"]),
            str(p["runs_formed"]),
            _ratio(p.get("bytes_logical", 0), p.get("bytes_stored", 0)),
            _per_record(p.get("bytes_stored", 0), p.get("records_written", 0)),
            f"{p.get('wall_seconds', 0.0):.3f}",
        ])
    rows.append([
        "(run total)",
        f"{run.io_total:,}",
        f"{run.io_sequential:,}",
        f"{run.io_random:,}",
        str(run.merge_passes),
        str(run.runs_formed),
        _ratio(run.bytes_logical, run.bytes_stored),
        _per_record(run.bytes_stored, run.records_written),
        f"{run.wall_seconds:.3f}",
    ])
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = [f"{run.algorithm} @ {run.x}  —  per-phase I/O and merge passes"]
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_trace(run: RunResult) -> str:
    """Predicted vs. measured blocks per top-level phase, from the plan
    executor's trace ledger (empty string when the run carried no trace,
    e.g. DFS-SCC or a failed run).

    The delta column is how far the planner's cost model strayed from the
    measured pipeline; the calibration benchmark gates it, this table just
    reports it alongside the paper-style rows.
    """
    if not run.trace:
        return ""
    header = ["phase", "predicted", "measured", "delta", "makespan", "wall_s"]
    rows: List[List[str]] = [header]

    def _delta(predicted: int, measured: int) -> str:
        if not predicted:
            return "-"
        return f"{100 * (measured - predicted) / predicted:+.1f}%"

    for label in sorted(run.trace):
        bucket = run.trace[label]
        rows.append([
            label,
            f"{bucket['predicted']:,}",
            f"{bucket['measured']:,}",
            _delta(bucket["predicted"], bucket["measured"]),
            f"{bucket['makespan']:,}",
            f"{bucket.get('wall_seconds', 0.0):.3f}",
        ])
    rows.append([
        "(total)",
        f"{run.trace_predicted:,}",
        f"{run.trace_measured:,}",
        _delta(run.trace_predicted, run.trace_measured),
        "-",
        f"{run.wall_seconds:.3f}",
    ])
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = [f"{run.algorithm} @ {run.x}  —  plan trace (predicted vs measured blocks)"]
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_sweep(sweep: Sweep, metric: str = "io") -> str:
    """One text table per figure: x values down, algorithms across.

    Args:
        sweep: the grid of runs.
        metric: ``"io"`` (block I/Os, the paper's "Number of I/Os" axis),
            ``"time"`` (wall seconds, the paper's time axis), ``"random"``
            (random block I/Os), or ``"makespan"`` (critical-path I/Os of
            a striped run).
    """
    algorithms = sweep.algorithms
    header = [sweep.x_label] + algorithms
    rows: List[List[str]] = [header]
    for x in sweep.x_values:
        row = [str(x)]
        for algorithm in algorithms:
            row.append(sweep.result(algorithm, x).cell(metric))
        rows.append(row)
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = [f"{sweep.title}  —  metric: {metric}"]
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def print_sweep(sweep: Sweep, metrics: Optional[List[str]] = None) -> None:
    """Print the sweep in every requested metric (default: I/Os and time)."""
    for metric in metrics or ["io", "time"]:
        print()
        print(format_sweep(sweep, metric))


def ascii_chart(sweep: Sweep, metric: str = "io", width: int = 50) -> str:
    """A log-scale horizontal bar chart of the sweep — the figures' shapes
    as text.  Non-OK points render as their status instead of a bar.

    Args:
        sweep: the grid of runs.
        metric: ``"io"``, ``"time"``, or ``"random"``.
        width: bar width in characters for the largest value.
    """
    def value(run: RunResult) -> Optional[float]:
        if not run.ok:
            return None
        if metric == "io":
            return float(run.io_total)
        if metric == "time":
            return run.wall_seconds
        if metric == "random":
            return float(run.io_random)
        if metric == "makespan":
            return float(run.makespan)
        raise ValueError(f"unknown metric {metric!r}")

    values = [v for run in sweep.runs if (v := value(run)) is not None and v > 0]
    if not values:
        return f"{sweep.title} — no finished runs to chart"
    low, high = math.log10(min(values)), math.log10(max(values))
    span = max(high - low, 1e-9)
    label_width = max(
        len(f"{run.algorithm} @ {run.x}") for run in sweep.runs
    )
    lines = [f"{sweep.title}  —  {metric} (log scale)"]
    for x in sweep.x_values:
        for algorithm in sweep.algorithms:
            run = sweep.result(algorithm, x)
            label = f"{algorithm} @ {x}".rjust(label_width)
            v = value(run)
            if v is None:
                lines.append(f"{label} | {run.status}")
            elif v <= 0:
                lines.append(f"{label} | 0")
            else:
                bar = "#" * max(1, round((math.log10(v) - low) / span * width))
                lines.append(f"{label} | {bar} {run.cell(metric)}")
        lines.append(label_width * " " + " |")
    return "\n".join(lines[:-1])


def format_scaling_table(runs: List[RunResult], title: str = "Worker scaling") -> str:
    """The Fig. 6-style K-sweep summary: one row per worker count.

    ``speedup`` is the K=1 *makespan* over this run's makespan (the
    critical-path win of striping); ``efficiency`` is speedup over K.
    ``io_total`` staying flat across rows is the ledger-identity invariant
    — parallelism redistributes I/O, it never adds or removes any.
    """
    base = next((r for r in runs if r.workers == 1), runs[0] if runs else None)
    header = ["workers", "io_total", "makespan", "speedup", "efficiency",
              "wall_s"]
    rows: List[List[str]] = [header]
    for run in runs:
        if run.ok and run.makespan and base is not None and base.makespan:
            speedup = base.makespan / run.makespan
            rows.append([
                str(run.workers),
                f"{run.io_total:,}",
                f"{run.makespan:,}",
                f"{speedup:.2f}x",
                f"{speedup / run.workers:.2f}",
                f"{run.wall_seconds:.3f}",
            ])
        else:
            rows.append([str(run.workers), run.status, "-", "-", "-", "-"])
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = [title]
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def sweep_to_json(sweep: Sweep, indent: Optional[int] = 1) -> str:
    """Serialize a sweep for external plotting tools.

    The schema is one record per run: algorithm, sweep coordinate, status,
    the three I/O counters, wall seconds, SCC count, iteration count, the
    payload-byte ledger (logical vs stored bytes, compression ratio,
    stored bytes per record, and the per-width profile), and — for
    autotuned runs — the optimizer's decision summary with plan-cache
    hit/miss counters.  Each record also carries the run's fault-health
    ledger (all zeros/empty on fault-free runs).
    """
    payload = {
        "title": sweep.title,
        "x_label": sweep.x_label,
        "runs": [
            {
                "algorithm": run.algorithm,
                "x": run.x,
                "status": run.status,
                "io_total": run.io_total,
                "io_random": run.io_random,
                "io_sequential": run.io_sequential,
                "wall_seconds": run.wall_seconds,
                "num_sccs": run.num_sccs,
                "iterations": run.iterations,
                "merge_passes": run.merge_passes,
                "runs_formed": run.runs_formed,
                "records_written": run.records_written,
                "bytes_logical": run.bytes_logical,
                "bytes_stored": run.bytes_stored,
                "compression_ratio": run.compression_ratio,
                "bytes_per_record": run.bytes_per_record,
                "workers": run.workers,
                "makespan": run.makespan,
                "parallel_speedup": run.parallel_speedup,
                "channel_io": run.channel_io,
                "width_profile": {
                    str(width): per_record
                    for width, per_record in sorted(run.width_profile.items())
                },
                "phases": run.phases,
                "trace": run.trace,
                "trace_predicted": run.trace_predicted,
                "trace_measured": run.trace_measured,
                "autotune": run.autotune,
                "health": run.health,
            }
            for run in sweep.runs
        ],
    }
    return json.dumps(payload, indent=indent)


def shape_summary(sweep: Sweep, better: str, worse: str) -> str:
    """Summarize who wins and by what factor, point by point.

    Points where ``worse`` hit INF/NONTERM are reported as such — that *is*
    the paper's result for DFS-SCC and EM-SCC.
    """
    lines = [f"{better} vs {worse}:"]
    for x in sweep.x_values:
        b = sweep.result(better, x)
        w = sweep.result(worse, x)
        if not w.ok:
            lines.append(f"  {sweep.x_label}={x}: {worse} -> {w.status}")
        elif not b.ok:
            lines.append(f"  {sweep.x_label}={x}: {better} -> {b.status} (!)")
        elif b.io_total == 0:
            lines.append(f"  {sweep.x_label}={x}: {better} used no I/O")
        else:
            ratio = w.io_total / b.io_total
            lines.append(
                f"  {sweep.x_label}={x}: {better} wins {ratio:.1f}x on I/Os"
            )
    return "\n".join(lines)
