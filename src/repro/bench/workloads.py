"""Benchmark workloads: the paper's datasets at simulation scale.

The paper's sweeps are re-expressed in scale-free terms so they survive the
10^-3 node-count scaling (DESIGN.md):

* memory is swept as a *ratio* of the semi-external threshold
  ``8 * |V| + B`` (Table I's 200M–600M at |V|=100M are ratios 0.25–0.75 of
  ``8|V|``; Figure 7's 400M–1G on WEBSPAM are ratios ~0.47–1.21);
* graph size (Figure 6) is swept as a percentage of the edge file;
* everything else (degree, SCC size/count sweeps) carries over directly.

``REPRO_BENCH_NODES`` scales every workload up or down (default 10 000
nodes; the paper's default |V| is 100M).
"""

from __future__ import annotations

import os
import random
from typing import List, Optional, Tuple

from repro.graph.datasets import build_dataset
from repro.graph.generators import GeneratedGraph, webspam_like

__all__ = [
    "BENCH_NODES",
    "BLOCK_SIZE",
    "semi_threshold",
    "memory_for_ratio",
    "MEMORY_RATIOS",
    "WEBSPAM_MEMORY_RATIOS",
    "shuffled_edges",
    "webspam_graph",
    "subsample_edges",
    "family_graph",
]

BENCH_NODES = int(os.environ.get("REPRO_BENCH_NODES", "4000"))
"""Node count for the default-sized benchmark graphs (paper: 100M)."""

BLOCK_SIZE = 1024
"""Simulated block size used by the benchmarks."""

MEMORY_RATIOS = (0.4, 0.45, 0.5, 0.625, 0.75)
"""Table I's memory sweep as ratios of the semi-external threshold.

The paper sweeps 200M..600M at 8|V| = 800M, i.e. ratios 0.25..0.75; at
simulation scale the deepest ratios densify the contracted graph beyond
what pure Python finishes in minutes (the same densification the paper
observes as "the contraction rate decreases ... since the graph becomes
denser"), so the sweep starts at 0.4.  EXPERIMENTS.md records this."""

WEBSPAM_MEMORY_RATIOS = (0.47, 0.71, 0.94, 1.21)
"""Figure 7's 400M..1G sweep against WEBSPAM's 8|V| = 847M."""

DEFAULT_MEMORY_RATIO = 0.5
"""Table I's default memory (400M at 8|V|=800M)."""


def semi_threshold(num_nodes: int, block_size: int = BLOCK_SIZE) -> int:
    """Memory needed to run Semi-SCC directly: ``8|V| + B``."""
    return 8 * num_nodes + block_size


def memory_for_ratio(
    num_nodes: int, ratio: float, block_size: int = BLOCK_SIZE
) -> int:
    """A memory budget at ``ratio`` times the semi-external threshold."""
    return max(2 * block_size, int(ratio * semi_threshold(num_nodes, block_size)))


def shuffled_edges(graph: GeneratedGraph, seed: int = 12345) -> List[Tuple[int, int]]:
    """The graph's edges in a deterministic random on-disk order.

    Generators emit planted-SCC edges contiguously; real edge files are not
    ordered that way, and EM-SCC's behaviour "relies largely on the order
    of edges stored on disk" (Section IV) — so benchmarks store shuffled
    files.
    """
    edges = list(graph.edges)
    random.Random(seed).shuffle(edges)
    return edges


def webspam_graph(num_nodes: Optional[int] = None, seed: int = 7) -> GeneratedGraph:
    """The WEBSPAM-UK2007 stand-in at benchmark scale.

    The real crawl averages 35 edges per page; pure-Python contraction on
    a degree-35 graph is infeasible, so the stand-in uses degree 6 and the
    memory sweep keeps the paper's M / 8|V| ratios (see DESIGN.md).
    """
    return webspam_like(num_nodes or BENCH_NODES, avg_degree=6.0, seed=seed)


def subsample_edges(
    edges: List[Tuple[int, int]], percent: int, seed: int = 99
) -> List[Tuple[int, int]]:
    """Keep ``percent``% of the edges (Figure 6 varies graph size this way)."""
    if percent >= 100:
        return list(edges)
    rng = random.Random(seed)
    keep = int(len(edges) * percent / 100)
    return rng.sample(edges, keep)


def family_graph(
    family: str,
    num_nodes: Optional[int] = None,
    avg_degree: Optional[float] = None,
    scc_size: Optional[int] = None,
    scc_count: Optional[int] = None,
    seed: int = 0,
) -> GeneratedGraph:
    """A Table I dataset at benchmark scale (``BENCH_NODES`` by default)."""
    return build_dataset(
        family,
        num_nodes=num_nodes or BENCH_NODES,
        avg_degree=avg_degree,
        scc_size=scc_size,
        scc_count=scc_count,
        seed=seed,
    )
