"""Sweep-to-sweep regression checking.

Benchmarks persist their sweeps as JSON (``sweep_to_json``); this module
compares two such files — a baseline and a candidate — point by point and
flags I/O or status regressions beyond a tolerance.  The workflow a
maintainer runs before merging a change to the pipeline:

    pytest benchmarks/ --benchmark-only          # writes results/*.json
    python -c "from repro.bench.regression import compare_files, render; \\
               print(render(compare_files('old/fig7.json', 'new/fig7.json')))"
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["PointDelta", "SweepComparison", "compare_sweeps", "compare_files", "render"]


@dataclass(frozen=True)
class PointDelta:
    """One grid point's change between baseline and candidate."""

    algorithm: str
    x: object
    baseline_status: str
    candidate_status: str
    baseline_io: int
    candidate_io: int

    @property
    def io_ratio(self) -> float:
        """candidate / baseline block I/Os (1.0 = unchanged)."""
        if self.baseline_io == 0:
            return 1.0 if self.candidate_io == 0 else float("inf")
        return self.candidate_io / self.baseline_io

    @property
    def status_changed(self) -> bool:
        """True when OK/INF/NONTERM flipped in either direction."""
        return self.baseline_status != self.candidate_status


@dataclass
class SweepComparison:
    """All deltas between two sweeps plus the regression verdict."""

    title: str
    deltas: List[PointDelta]
    tolerance: float
    missing_points: List[Tuple[str, object]]

    @property
    def regressions(self) -> List[PointDelta]:
        """Points that got worse: status flipped away from OK, or I/O grew
        beyond the tolerance."""
        out = []
        for delta in self.deltas:
            if delta.baseline_status == "OK" and delta.candidate_status != "OK":
                out.append(delta)
            elif (
                delta.baseline_status == "OK"
                and delta.io_ratio > 1.0 + self.tolerance
            ):
                out.append(delta)
        return out

    @property
    def improvements(self) -> List[PointDelta]:
        """Points that got better beyond the tolerance."""
        return [
            d for d in self.deltas
            if d.candidate_status == "OK"
            and (d.baseline_status != "OK" or d.io_ratio < 1.0 - self.tolerance)
        ]

    @property
    def ok(self) -> bool:
        """True when nothing regressed and every point was comparable."""
        return not self.regressions and not self.missing_points


def compare_sweeps(baseline: dict, candidate: dict,
                   tolerance: float = 0.10) -> SweepComparison:
    """Compare two decoded sweep-JSON payloads.

    Args:
        baseline, candidate: payloads in the ``sweep_to_json`` schema.
        tolerance: relative I/O growth tolerated before flagging (10%).
    """
    def index(payload: dict) -> Dict[Tuple[str, object], dict]:
        return {(r["algorithm"], r["x"]): r for r in payload["runs"]}

    base_index = index(baseline)
    cand_index = index(candidate)
    deltas: List[PointDelta] = []
    missing: List[Tuple[str, object]] = []
    for key, base_run in base_index.items():
        cand_run = cand_index.get(key)
        if cand_run is None:
            missing.append(key)
            continue
        deltas.append(
            PointDelta(
                algorithm=key[0],
                x=key[1],
                baseline_status=base_run["status"],
                candidate_status=cand_run["status"],
                baseline_io=base_run["io_total"],
                candidate_io=cand_run["io_total"],
            )
        )
    return SweepComparison(
        title=candidate.get("title", baseline.get("title", "sweep")),
        deltas=deltas,
        tolerance=tolerance,
        missing_points=missing,
    )


def compare_files(baseline_path: str, candidate_path: str,
                  tolerance: float = 0.10) -> SweepComparison:
    """Compare two sweep JSON files on disk."""
    with open(baseline_path, "r", encoding="utf-8") as f:
        baseline = json.load(f)
    with open(candidate_path, "r", encoding="utf-8") as f:
        candidate = json.load(f)
    return compare_sweeps(baseline, candidate, tolerance=tolerance)


def render(comparison: SweepComparison) -> str:
    """Human-readable comparison report."""
    lines = [f"{comparison.title} — regression check "
             f"(tolerance {comparison.tolerance:.0%})"]
    if comparison.ok:
        lines.append("OK: no regressions")
    for delta in comparison.regressions:
        if delta.status_changed:
            lines.append(
                f"REGRESSION {delta.algorithm} @ {delta.x}: "
                f"{delta.baseline_status} -> {delta.candidate_status}"
            )
        else:
            lines.append(
                f"REGRESSION {delta.algorithm} @ {delta.x}: I/O "
                f"{delta.baseline_io:,} -> {delta.candidate_io:,} "
                f"({delta.io_ratio:.2f}x)"
            )
    for delta in comparison.improvements:
        lines.append(
            f"improved {delta.algorithm} @ {delta.x}: "
            f"{delta.baseline_io:,} -> {delta.candidate_io:,}"
        )
    for key in comparison.missing_points:
        lines.append(f"MISSING {key[0]} @ {key[1]} in the candidate sweep")
    return "\n".join(lines)
