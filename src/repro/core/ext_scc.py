"""Ext-SCC: the contract-and-expand external SCC algorithm (Algorithm 2).

Pipeline::

    G_1 = G
    while V_i does not fit in memory:          # graph contraction
        V_{i+1} = Get-V(G_i)                   # Algorithm 3
        E_{i+1} = Get-E(G_i, V_{i+1})          # Algorithm 4
    SCC_l = Semi-SCC(G_l)                      # semi-external solver
    for i = l-1 .. 1:                          # graph expansion
        SCC_i = Expansion(G_i, G_{i+1}, SCC_{i+1})   # Algorithm 5
    return SCC_1

The stop condition is the paper's ``bytes_per_node * |V_i| + B <= M`` (the
memory 1PB-SCC needs).  When the input already satisfies it, no contraction
happens and the semi-external solver runs directly — the sharp cost drop at
``M >= 8|V| + B`` in Figure 7.

:func:`compute_sccs` is the one-call convenience API used by the examples;
:class:`ExtSCC` is the object API exposing per-iteration statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.config import ExtSCCConfig
from repro.core.contraction import ContractionLevel, build_contract_plan
from repro.core.expansion import build_expand_plan
from repro.core.result import SCCResult
from repro.exceptions import IOBudgetExceeded, ReproError, SimulatedCrash
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import DEFAULT_BLOCK_SIZE, BlockDevice
from repro.io.codecs import CODECS
from repro.io.memory import MemoryBudget
from repro.io.parallel import EXECUTOR_BACKENDS, MakespanMeter, WorkerPool
from repro.io.pool import SharedBufferPool
from repro.io.stats import RECOVERY_PHASE, IOBudget, IOSnapshot, IOStats
from repro.plan import ExtPlan, PlanExecutor, Span, TraceLedger
from repro.semi_external import SEMI_SCC_SOLVERS, build_semi_plan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (recovery imports us)
    from repro.analysis.calibration import CalibrationProfile
    from repro.analysis.planner import TuningDecision
    from repro.plan.cache import PlanCache
    from repro.recovery.checkpoint import CheckpointManager, ResumeState
    from repro.recovery.fault import FaultSchedule
    from repro.recovery.policy import FaultPolicy

__all__ = ["ExtSCC", "ExtSCCOutput", "IterationRecord", "compute_sccs"]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class IterationRecord:
    """Sizes and I/O of one contraction iteration (``G_i -> G_{i+1}``).

    These are the quantities behind Theorems 5.3/5.4 and the paper's
    discussion of contraction stability; the ablation benchmark prints
    them per iteration.
    """

    level: int
    num_nodes: int
    num_edges: int
    next_num_nodes: int
    next_num_edges: int
    io: IOSnapshot

    @property
    def nodes_removed(self) -> int:
        """How many nodes this iteration removed."""
        return self.num_nodes - self.next_num_nodes

    @property
    def edge_growth(self) -> float:
        """``|E_{i+1}| / |E_i|`` — Section VII aims to push this below 1."""
        if self.num_edges == 0:
            return 0.0
        return self.next_num_edges / self.num_edges


@dataclass
class ExtSCCOutput:
    """Everything an Ext-SCC run produces.

    Attributes:
        result: the SCC labeling (canonicalized).
        iterations: one record per contraction iteration (empty when the
            input fit in memory immediately).
        io: total block I/O of the run.
        contraction_io / semi_io / expansion_io: per-phase I/O.
        wall_seconds: wall-clock time of the run.
        phase_seconds: wall-clock seconds per top-level phase label
            (``contraction`` / ``semi-scc`` / ``expansion`` / ``recovery``)
            — a host measurement, never part of the deterministic ledger.
        config: the configuration used.
        recovery_io: journal-validation I/O of a checkpointed run (zero
            unless a crashed run was resumed).
        resumed: this run continued a crashed one from its checkpoint.
        makespan: critical-path block I/Os — per top-level phase, the
            busiest channel's share, summed (see
            :class:`~repro.io.parallel.MakespanMeter`).  Equals
            ``io.total`` on an unstriped device or with one channel.
        channel_io: per-channel I/O totals of a striped run (a single
            entry equal to ``io.total`` when unstriped).
        trace: per-operator execution spans (one per executed plan stage,
            predicted vs. measured I/Os) — what ``--trace-json`` dumps.
        plans: the optimized plans the run executed, in execution order,
            with next-level size estimates trued up to the measured sizes
            (so a calibrated model can re-price them post-run).
        bytes_by_width: the run's payload ledger delta —
            ``{logical width: (records, stored bytes)}`` — what
            :meth:`~repro.analysis.calibration.CalibrationProfile.ingest_run`
            fits per-codec stored widths from.
        tuning: the autotuner's decision when the run was autotuned
            (``None`` on the static path).
        health: the fault-tolerance ledger delta of the run — retries,
            read-repairs, re-dispatched tasks, parity writes, escalations,
            simulated backoff seconds, and degradation events (see
            :class:`~repro.io.stats.HealthLedger`).  All zeros/empty on a
            fault-free run.
    """

    result: SCCResult
    iterations: List[IterationRecord]
    io: IOSnapshot
    contraction_io: IOSnapshot
    semi_io: IOSnapshot
    expansion_io: IOSnapshot
    wall_seconds: float
    config: ExtSCCConfig
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    recovery_io: IOSnapshot = field(default_factory=IOSnapshot)
    resumed: bool = False
    makespan: int = 0
    channel_io: List[int] = field(default_factory=list)
    trace: TraceLedger = field(default_factory=TraceLedger)
    plans: List[ExtPlan] = field(default_factory=list)
    bytes_by_width: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    tuning: Optional["TuningDecision"] = None
    health: Dict[str, object] = field(default_factory=dict)

    @property
    def num_iterations(self) -> int:
        """Number of contraction iterations performed."""
        return len(self.iterations)

    @property
    def parallel_speedup(self) -> float:
        """``total I/O / makespan`` — how much of the work the channels
        overlapped (1.0 when serial or unstriped)."""
        return self.io.total / self.makespan if self.makespan else 1.0


class ExtSCC:
    """The contract-and-expand external SCC solver.

    Args:
        config: pipeline configuration; defaults to plain Ext-SCC
            (:meth:`ExtSCCConfig.baseline`).  Use
            :meth:`ExtSCCConfig.optimized` for Ext-SCC-Op.
        calibration: optional
            :class:`~repro.analysis.calibration.CalibrationProfile`; the
            planner then prices every plan with the fitted per-codec
            stored widths instead of the analytic logical widths.
            Predictions only — execution and labels never depend on it.
    """

    def __init__(self, config: Optional[ExtSCCConfig] = None,
                 calibration: Optional["CalibrationProfile"] = None) -> None:
        self.config = config if config is not None else ExtSCCConfig.baseline()
        self.calibration = calibration
        if self.config.semi_scc not in SEMI_SCC_SOLVERS:
            raise ReproError(
                f"unknown semi-external solver {self.config.semi_scc!r}; "
                f"choose from {sorted(SEMI_SCC_SOLVERS)}"
            )
        if self.config.codec not in CODECS:
            raise ReproError(
                f"unknown codec {self.config.codec!r}; "
                f"choose from {sorted(CODECS)}"
            )
        if self.config.workers < 1:
            raise ReproError(
                f"workers must be at least 1, got {self.config.workers}"
            )
        if self.config.executor not in EXECUTOR_BACKENDS:
            raise ReproError(
                f"unknown executor {self.config.executor!r}; "
                f"choose from {sorted(EXECUTOR_BACKENDS)}"
            )

    def nodes_fit(self, num_nodes: int, memory: MemoryBudget, block_size: int) -> bool:
        """The contraction stop condition: can Semi-SCC handle |V| nodes?"""
        return self.config.bytes_per_node * num_nodes + block_size <= memory.nbytes

    def run(
        self,
        device: BlockDevice,
        edges: EdgeFile,
        memory: MemoryBudget,
        nodes: Optional[NodeFile] = None,
        on_iteration: Optional[Callable[[IterationRecord], None]] = None,
        checkpoint: Optional["CheckpointManager"] = None,
        tuning: Optional["TuningDecision"] = None,
    ) -> ExtSCCOutput:
        """Compute all SCCs of the graph stored in ``edges``.

        Args:
            device: the simulated disk the graph lives on.
            edges: the edge file ``E``.
            memory: the budget ``M`` (must satisfy ``M >= 2B``).
            nodes: the node file ``V``; derived from the edges when omitted
                (isolated nodes must be supplied explicitly).
            on_iteration: optional progress callback invoked after every
                contraction iteration with its :class:`IterationRecord`
                (long external runs report progress this way).
            checkpoint: optional
                :class:`~repro.recovery.checkpoint.CheckpointManager` on
                ``device``.  Phase boundaries are then journaled so a
                crashed run resumes from the last durable level instead of
                restarting; journal-validation reads of a resume are
                charged to the ``recovery`` phase.  Checkpointing an
                uninterrupted run costs zero simulated I/O.
            tuning: the :func:`~repro.analysis.planner.autotune_config`
                decision that chose this run's config.  Recorded on the
                output and in every plan's rewrite log; a cold search
                additionally logs a ``planning``-phase span with its wall
                time (a warm cache hit logs none — that *is* the cache's
                win).

        Returns:
            An :class:`ExtSCCOutput` with the labeling and statistics.
        """
        config = self.config
        memory.validate_against_block(device.block_size)
        stats: IOStats = device.stats
        # One knob switches every intermediate the run writes: operators
        # that don't take an explicit codec argument fall back to this.
        device.default_codec = config.codec
        if device.pool is None and config.pool_readahead > 1:
            # Readahead + write coalescing are counter-neutral (every block
            # is still charged once, with the caller's access pattern), so
            # attaching the pool never changes the ledger — only the shape
            # of the request stream a real disk would see.
            SharedBufferPool(
                device,
                readahead=config.pool_readahead,
                coalesce_writes=config.pool_coalesce_writes,
            )
        created_pool: Optional[WorkerPool] = None
        if device.worker_pool is None and config.workers > 1:
            # The shard width of every partitionable operator downstream.
            # Task-level only: shard contents and charges are identical to
            # the serial pipeline, so any K reproduces the K=1 ledger.
            created_pool = WorkerPool(workers=config.workers, backend=config.executor)
            device.attach_workers(created_pool)
        meter = MakespanMeter(device)
        start = time.perf_counter()
        # Wall-clock per top-level phase is reported as a delta against the
        # device's ledger, which may already carry phases from a prior run.
        seconds_start = dict(stats.seconds_by_phase)
        bytes_start = {
            width: (count, stored)
            for width, (count, stored) in stats.bytes_by_width.items()
        }
        preexisting = set(device.list_files())
        run_start = stats.snapshot()
        health_start = stats.health.snapshot()

        state: Optional["ResumeState"] = None
        recovery_io = IOSnapshot()
        if checkpoint is not None:
            recovery_start = stats.snapshot()
            with stats.phase(RECOVERY_PHASE):
                state = checkpoint.recover(edges, memory, config)
            recovery_io = stats.snapshot() - recovery_start
            if not state.resumed:
                checkpoint.begin(edges, nodes, memory, config)
        try:
            return self._pipeline(
                device, edges, memory, nodes, on_iteration, checkpoint,
                state, stats, run_start, recovery_io, start, meter,
                seconds_start, bytes_start, tuning, health_start,
            )
        except (IOBudgetExceeded, SimulatedCrash):
            if checkpoint is None:
                # Abort hygiene: without a journal to make them reachable,
                # half-built intermediates are garbage — drop everything
                # this run created.  Deletes are free, so the ledger still
                # shows exactly where the abort happened.
                for name in device.list_files():
                    if name not in preexisting:
                        device.delete(name)
            raise
        finally:
            if created_pool is not None:
                # Drop the executors this run spun up (worker threads, and
                # for the processes backend the worker processes).  The
                # pool object stays attached and usable — a later run on
                # the same device lazily recreates them.
                created_pool.close()

    def _pipeline(
        self,
        device: BlockDevice,
        edges: EdgeFile,
        memory: MemoryBudget,
        nodes: Optional[NodeFile],
        on_iteration: Optional[Callable[[IterationRecord], None]],
        checkpoint: Optional["CheckpointManager"],
        state: Optional["ResumeState"],
        stats: IOStats,
        run_start: IOSnapshot,
        recovery_io: IOSnapshot,
        start: float,
        meter: MakespanMeter,
        seconds_start: Optional[Dict[str, float]] = None,
        bytes_start: Optional[Dict[str, Tuple[int, int]]] = None,
        tuning: Optional["TuningDecision"] = None,
        health_start: Optional[Dict[str, object]] = None,
    ) -> ExtSCCOutput:
        """The contract / semi / expand pipeline, parameterized by an
        optional :class:`ResumeState` that skips the already-durable part.

        Every phase is built as an :class:`~repro.plan.ExtPlan`, rewritten
        by the planner, and run through one :class:`PlanExecutor` that
        feeds the run's trace ledger and fires the checkpoint commits
        declared on ``Materialize`` nodes.  The stage thunks are the same
        fused pipelines as before, so the ledger and labels are identical
        to the pre-plan code path.
        """
        # Function-level imports: analysis.cost_model imports this module
        # (for IterationRecord), so the planner cannot be imported at the
        # top without a cycle.
        from repro.analysis.cost_model import CostModel
        from repro.analysis.planner import optimize_plan

        config = self.config
        resumed = state is not None and state.resumed
        if self.calibration is not None:
            model = self.calibration.model(
                device.block_size, memory.nbytes, config.codec
            )
        else:
            model = CostModel(device.block_size, memory.nbytes)
        trace = TraceLedger()
        plans: List[ExtPlan] = []
        executor = PlanExecutor(device, trace=trace)
        if tuning is not None and not tuning.cache_hit:
            # The one span of the planning phase: the knob search's wall
            # time.  A warm cache hit records nothing here — "zero
            # planning-phase spans" is the cache's observable win.
            trace.record(Span(
                plan="autotune", stage="search", phase="planning",
                operators=(f"search:{len(tuning.candidates)} candidates",),
                predicted_ios=None, reads=0, writes=0, random_ios=0,
                records=len(tuning.candidates), bytes_stored=0, makespan=0,
                wall_seconds=tuning.planning_seconds,
            ))

        if state is not None and state.nodes is not None:
            nodes = state.nodes
        elif nodes is None:
            nodes = edges.node_file(memory)
            if checkpoint is not None:
                checkpoint.commit_nodes(nodes)

        levels: List[ContractionLevel] = list(state.levels) if resumed else []
        iterations: List[IterationRecord] = list(state.iterations) if resumed else []
        if resumed and state.frontier_edges is not None:
            current_edges: EdgeFile = state.frontier_edges
            current_nodes: NodeFile = state.frontier_nodes
        else:
            current_edges, current_nodes = edges, nodes
        semi_done = resumed and state.semi_done

        contraction_start = stats.snapshot()
        if not semi_done:
            with stats.phase("contraction"):
                i = len(iterations) + 1
                while not self.nodes_fit(
                    current_nodes.num_nodes, memory, device.block_size
                ):
                    if i > config.max_iterations:
                        raise ReproError(
                            f"contraction did not converge in "
                            f"{config.max_iterations} iterations"
                        )
                    before = stats.snapshot()
                    made: dict = {}

                    def record_for(lvl: ContractionLevel) -> IterationRecord:
                        # Built at most once per iteration: the journal's
                        # commit hook (fired at the plan's Materialize,
                        # after all of the iteration's I/O) and the
                        # iterations list share the same record.
                        if "record" not in made:
                            made["record"] = IterationRecord(
                                level=lvl.level,
                                num_nodes=lvl.num_nodes,
                                num_edges=lvl.num_edges,
                                next_num_nodes=lvl.next_nodes.num_nodes,
                                next_num_edges=lvl.next_edges.num_edges,
                                io=stats.snapshot() - before,
                            )
                        return made["record"]

                    with stats.phase(f"contract-{i}"):
                        plan = build_contract_plan(
                            device, current_edges, current_nodes, memory,
                            config, level=i,
                        )
                        optimize_plan(plan, model, config, decision=tuning)
                        hooks = (
                            checkpoint.plan_hooks(record_factory=record_for)
                            if checkpoint is not None else None
                        )
                        level = executor.execute(plan, commit_hooks=hooks)
                    _true_up_contract_plan(plan, level)
                    plans.append(plan)
                    record = record_for(level)
                    iterations.append(record)
                    if on_iteration is not None:
                        on_iteration(record)
                    levels.append(level)
                    current_edges = level.next_edges
                    current_nodes = level.next_nodes
                    i += 1
        contraction_io = stats.snapshot() - contraction_start

        semi_start = stats.snapshot()
        if semi_done:
            scc_file = state.scc_store
        else:
            with stats.phase("semi-scc"):
                plan = build_semi_plan(
                    device, current_edges, current_nodes, memory,
                    config.semi_scc,
                )
                optimize_plan(plan, model, config, decision=tuning)
                hooks = (
                    checkpoint.plan_hooks() if checkpoint is not None else None
                )
                scc_file = executor.execute(plan, commit_hooks=hooks)
            plans.append(plan)
        semi_io = stats.snapshot() - semi_start

        expansion_start = stats.snapshot()
        with stats.phase("expansion"):
            for level in reversed(levels):
                scc_prev = scc_file
                with stats.phase(f"expand-{level.level}"):
                    # Commit-then-delete: under checkpointing the previous
                    # labels survive until the expand entry is durable —
                    # the plan's final Materialize declares the ``expand``
                    # role, so the executor commits it before this loop
                    # deletes the previous labels.
                    plan = build_expand_plan(
                        device, level, scc_prev, memory, config,
                        delete_input=checkpoint is None,
                    )
                    optimize_plan(plan, model, config, decision=tuning)
                    hooks = (
                        checkpoint.plan_hooks(level=level)
                        if checkpoint is not None else None
                    )
                    scc_file = executor.execute(plan, commit_hooks=hooks)
                plans.append(plan)
                if checkpoint is not None:
                    scc_prev.delete()
                level.cleanup()
        expansion_io = stats.snapshot() - expansion_start

        result = SCCResult.from_pairs(scc_file.scan())  # final output scan
        scc_file.delete()
        if checkpoint is not None:
            checkpoint.finish()  # syncs a manifest that no longer lists scc_file
        baseline_seconds = seconds_start or {}
        phase_seconds = {
            label: stats.seconds_by_phase.get(label, 0.0)
            - baseline_seconds.get(label, 0.0)
            for label in stats.top_level_phases
            if label in stats.seconds_by_phase
        }
        return ExtSCCOutput(
            result=result,
            iterations=iterations,
            io=stats.snapshot() - run_start,
            contraction_io=contraction_io,
            semi_io=semi_io,
            expansion_io=expansion_io,
            wall_seconds=time.perf_counter() - start,
            config=config,
            phase_seconds=phase_seconds,
            recovery_io=recovery_io,
            resumed=resumed,
            makespan=meter.makespan(),
            channel_io=meter.channel_snapshot(),
            trace=trace,
            plans=plans,
            bytes_by_width={
                width: (
                    count - bytes_start.get(width, (0, 0))[0],
                    stored - bytes_start.get(width, (0, 0))[1],
                )
                for width, (count, stored) in stats.bytes_by_width.items()
            } if bytes_start is not None else {
                width: (count, stored)
                for width, (count, stored) in stats.bytes_by_width.items()
            },
            tuning=tuning,
            health=stats.health.delta(health_start or {}),
        )


def _true_up_contract_plan(plan: ExtPlan, level: ContractionLevel) -> None:
    """Replace a contract plan's next-level size *estimates* with the sizes
    the iteration actually produced.

    :func:`~repro.core.contraction.build_contract_plan` prices the two
    Get-E operators over not-yet-built ``G_{i+1}`` files with the
    planner's retention/growth coefficients (predictions never influence
    execution).  Trueing them up afterwards lets a calibrated model
    re-price the stored plan post-run — the trace-envelope benchmark
    depends on this.
    """
    n = level.level + 1
    next_v = level.next_nodes.num_nodes
    next_e = level.next_edges.num_edges
    for op in plan.ops:
        if op.label == f"V_{n} scans":
            op.records, op.cost = next_v, ("scan", next_v, 4)
        elif op.label == f"E_{n}":
            op.records, op.cost = next_e, ("write", next_e, 8)
        elif op.label in (f"V_{n}", "cover dedupe"):
            op.records = next_v


def compute_sccs(
    edges: Iterable[Edge],
    num_nodes: Optional[int] = None,
    memory_bytes: int = 1 << 20,
    block_size: int = DEFAULT_BLOCK_SIZE,
    optimized: bool = True,
    config: Optional[ExtSCCConfig] = None,
    io_budget: Optional[int] = None,
    on_iteration: Optional[Callable[[IterationRecord], None]] = None,
    autotune: bool = False,
    calibration: Optional["CalibrationProfile"] = None,
    plan_cache: Optional["PlanCache"] = None,
    objective: Optional[str] = None,
    fault_policy: Optional["FaultPolicy"] = None,
    fault_schedule: Optional["FaultSchedule"] = None,
    parity: bool = False,
) -> ExtSCCOutput:
    """One-call API: load an edge list onto a fresh simulated disk and run
    Ext-SCC.

    Args:
        edges: ``(u, v)`` pairs (any integer ids).
        num_nodes: when given, nodes are ``0 .. num_nodes-1`` (so isolated
            nodes are included); otherwise the node set is derived from the
            edges.
        memory_bytes: the simulated main-memory budget ``M``.
        block_size: the simulated disk block size ``B``.
        optimized: run Ext-SCC-Op (default) instead of plain Ext-SCC;
            ignored when ``config`` is given.
        config: full configuration override.
        io_budget: optional block-I/O cap (raises
            :class:`~repro.exceptions.IOBudgetExceeded`).
        on_iteration: optional per-iteration progress callback.
        autotune: let the cost-based optimizer choose codec, workers,
            executor, and semi-external solver
            (:func:`~repro.analysis.planner.autotune_config`) before the
            run; also enabled by ``config.autotune``.  The chosen config
            then runs exactly as the same static config would — labels and
            ledgers are byte-identical.
        calibration: fitted cost constants for the search and the plan
            predictions.
        plan_cache: optional :class:`~repro.plan.PlanCache`; repeated
            queries with the same stats fingerprint skip the search.
        objective: override ``config.objective`` (``"io"`` /
            ``"wallclock"``).
        fault_policy: retry/backoff policy for transient faults
            (:class:`~repro.recovery.policy.FaultPolicy`); the device
            default applies when ``None``.
        fault_schedule: deterministic fault injection schedule
            (:class:`~repro.recovery.fault.FaultSchedule`) for chaos
            testing.
        parity: keep a RAID-5-style parity channel next to the data
            channels so single-channel outages and CRC-failed blocks are
            read-repaired in flight.  Forces a striped device even for
            ``workers == 1``.

    Returns:
        An :class:`ExtSCCOutput`.
    """
    if config is None:
        config = ExtSCCConfig.optimized() if optimized else ExtSCCConfig.baseline()
    if objective is not None:
        config = replace(config, objective=objective)
    tuning: Optional["TuningDecision"] = None
    if autotune or config.autotune:
        from repro.analysis.planner import autotune_config

        edges = list(edges)
        if num_nodes is not None:
            n = num_nodes
        elif edges:
            n = 1 + max(max(u, v) for u, v in edges)
        else:
            n = 0
        tuning = autotune_config(
            n, len(edges), memory_bytes, block_size, config=config,
            profile=calibration, cache=plan_cache,
        )
        config = tuning.config(config)
    budget = IOBudget(io_budget) if io_budget is not None else None
    if config.workers > 1 or parity:
        from repro.io.parallel import StripedDevice

        device: BlockDevice = StripedDevice(
            block_size=block_size, budget=budget,
            channels=max(config.workers, 1), parity=parity,
        )
    else:
        device = BlockDevice(block_size=block_size, budget=budget)
    if fault_policy is not None:
        device.attach_policy(fault_policy)
    if fault_schedule is not None:
        fault_schedule.attach(device)
    memory = MemoryBudget(memory_bytes)
    edge_file = EdgeFile.from_edges(device, "input-edges", edges)
    node_file: Optional[NodeFile] = None
    if num_nodes is not None:
        node_file = NodeFile.from_ids(
            device, "input-nodes", range(num_nodes), memory, presorted=True
        )
    return ExtSCC(config, calibration=calibration).run(
        device, edge_file, memory, nodes=node_file,
        on_iteration=on_iteration, tuning=tuning,
    )
