"""Configuration for Ext-SCC and Ext-SCC-Op.

The paper evaluates two variants: plain **Ext-SCC** (Algorithms 2–5) and
**Ext-SCC-Op** with every Section VII reduction enabled.  Each reduction is
an independent toggle here so the ablation benchmark can measure them
separately:

* ``trim_type1`` — drop nodes with ``deg_in = 0`` or ``deg_out = 0`` from
  ``V_{i+1}`` (they are singleton SCCs; Lemma 7.1);
* ``type2_reduction`` — skip adding a cover node when the edge's smaller
  endpoint is already covered, tracked in a bounded in-memory table;
* ``dedupe_parallel_edges`` — lazily remove parallel edges while sorting
  ``E_in`` / ``E_out`` in the next iteration;
* ``remove_self_loops`` — drop ``(u, u)`` edges when emitting ``E_add``;
* ``product_operator`` — Definition 7.1's ``deg_in*deg_out``-aware order.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Optional

from repro.constants import SEMI_EXTERNAL_BYTES_PER_NODE

__all__ = ["ExtSCCConfig", "OBJECTIVES"]

OBJECTIVES = ("io", "wallclock")
"""Cost objectives the planner can optimize: predicted total block I/Os
(``"io"``) or predicted wall-clock seconds (``"wallclock"``, calibrated
from measured traces)."""


@dataclass(frozen=True)
class ExtSCCConfig:
    """Tunables of the contract-and-expand pipeline.

    Attributes:
        trim_type1: Type-1 node reduction (Section VII).
        trim_rounds: how many times to cascade Type-1 trimming per
            iteration (extension beyond the paper, which trims once:
            removing a dead-end node can expose new dead ends; each extra
            round costs two semi-join-plus-sort passes over the trimmed
            edge set).  Ignored unless ``trim_type1`` is set.
        type2_reduction: Type-2 node reduction via the bounded table.
        codec: storage codec for every intermediate the pipeline writes —
            sort runs, merge outputs, degree/cover files, per-level SCC
            label files.  ``"gap-varint"`` (default) gap-encodes the sort
            field and varint-encodes the rest; ``"varint"`` skips the gap
            encoding; ``"fixed"`` is the uncompressed ablation,
            byte-identical to the pre-codec pipeline.  A storage-format
            extension beyond the paper; never changes which SCCs are found.
        dedupe_parallel_edges: lazy parallel-edge removal.
        remove_self_loops: drop self-loops when building ``E_add``.
        product_operator: use Definition 7.1 instead of 5.1.
        bytes_per_node: in-memory bytes per node charged to the
            semi-external solver; drives the contraction stop condition
            ``bytes_per_node * |V_i| + B <= M`` (paper: 8).
        type2_table_bytes: memory carved out for the Type-2 table
            (default: the full budget — the table piggybacks on M).
        semi_scc: name of the semi-external solver (see
            :data:`repro.semi_external.SEMI_SCC_SOLVERS`).
        max_iterations: safety cap on contraction iterations; Lemma 5.2
            guarantees progress so this only guards against bugs.
        validate: run extra internal assertions (Lemma 6.2 uniqueness of
            the SCC intersection); useful in tests, off for benchmarks.
        pool_readahead: blocks the shared buffer pool fetches per batch on
            sequential scans (1 disables pool attachment entirely).  The
            pool is counter-neutral: it batches requests without changing
            any :class:`~repro.io.stats.IOStats` counter.
        pool_coalesce_writes: blocks the file layer may buffer before a
            back-to-back flush (1 disables coalescing).
        workers: shard width ``K`` for the partitionable operators (merge
            passes, the degree co-scan, the expansion augments, the
            parallel semi-external solver) and the channel count of a
            :class:`~repro.io.parallel.StripedDevice` in the benchmark
            harness.  ``K=1`` is the exact serial pipeline; any ``K``
            produces identical SCC labels and identical *total* ledgers —
            parallelism only redistributes I/O across channels.
        executor: worker-pool backend, ``"serial"`` (default — shards run
            in submission order, keeping crash ordinals and traces
            deterministic) or ``"threads"`` (real overlap).
        autotune: let the cost-based optimizer *choose* codec, worker
            count, executor, and semi-external solver from predicted cost
            (calibrated when a profile is supplied) instead of trusting
            this config's values.  A planning knob: every choice the
            optimizer can make produces byte-identical SCC labels.
        objective: what the optimizer minimizes — ``"io"`` (predicted
            total block I/Os) or ``"wallclock"`` (predicted seconds from
            trace-calibrated per-executor constants).

    Construction validates the execution knobs (``workers >= 1``, a known
    ``executor``, a known ``objective``) so programmatically built
    configs — the optimizer enumerates many — fail fast at the library
    level rather than deep inside a run.
    """

    trim_type1: bool = False
    trim_rounds: int = 1
    type2_reduction: bool = False
    dedupe_parallel_edges: bool = False
    remove_self_loops: bool = False
    product_operator: bool = False
    codec: str = "gap-varint"
    bytes_per_node: int = SEMI_EXTERNAL_BYTES_PER_NODE
    type2_table_bytes: Optional[int] = None
    semi_scc: str = "spanning-tree"
    max_iterations: int = 10_000
    validate: bool = False
    pool_readahead: int = 8
    pool_coalesce_writes: int = 4
    workers: int = 1
    executor: str = "serial"
    autotune: bool = False
    objective: str = "io"

    def __post_init__(self) -> None:
        # Local import: repro.io.parallel must stay importable without
        # core.config (no cycle the other way exists today, but keep it so).
        from repro.exceptions import ReproError
        from repro.io.parallel import EXECUTOR_BACKENDS

        if self.workers < 1:
            raise ReproError(
                f"workers must be at least 1, got {self.workers}"
            )
        if self.executor not in EXECUTOR_BACKENDS:
            raise ReproError(
                f"unknown executor {self.executor!r}; "
                f"choose from {sorted(EXECUTOR_BACKENDS)}"
            )
        if self.objective not in OBJECTIVES:
            raise ReproError(
                f"unknown objective {self.objective!r}; "
                f"choose from {sorted(OBJECTIVES)}"
            )

    @classmethod
    def baseline(cls, **overrides) -> "ExtSCCConfig":
        """Plain Ext-SCC: Algorithms 2–5 with no Section VII reduction."""
        return cls(**overrides)

    @classmethod
    def optimized(cls, **overrides) -> "ExtSCCConfig":
        """Ext-SCC-Op: every Section VII reduction enabled."""
        base = cls(
            trim_type1=True,
            type2_reduction=True,
            dedupe_parallel_edges=True,
            remove_self_loops=True,
            product_operator=True,
        )
        return replace(base, **overrides) if overrides else base

    def fingerprint(self) -> dict:
        """A JSON-able snapshot of every knob, for checkpoint compatibility.

        A resume under a different configuration (or memory budget) would
        rebuild different contraction levels than the journal describes, so
        :class:`~repro.recovery.checkpoint.CheckpointManager` stores this
        dict in the journal header and refuses to resume on mismatch.

        ``workers`` and ``executor`` are *execution* knobs, not algorithm
        knobs: every K produces the same levels, labels, and total ledger,
        so a journal written at K=1 may be resumed at K=4 (and vice versa)
        — they are excluded from the fingerprint.  ``autotune`` and
        ``objective`` are *planning* knobs with the same property (the
        optimizer only picks among label-identical alternatives), so they
        are excluded too.
        """
        fp = asdict(self)
        fp.pop("workers", None)
        fp.pop("executor", None)
        fp.pop("autotune", None)
        fp.pop("objective", None)
        return fp

    @property
    def name(self) -> str:
        """Display name matching the paper's legend."""
        all_on = (
            self.trim_type1
            and self.type2_reduction
            and self.dedupe_parallel_edges
            and self.remove_self_loops
            and self.product_operator
        )
        any_on = (
            self.trim_type1
            or self.type2_reduction
            or self.dedupe_parallel_edges
            or self.remove_self_loops
            or self.product_operator
        )
        if all_on:
            return "Ext-SCC-Op"
        if not any_on:
            return "Ext-SCC"
        return "Ext-SCC-custom"
