"""Graph expansion: Algorithm 5.

Given ``G_i``, its contraction ``G_{i+1}``, and the SCC labels of every node
of ``V_{i+1}``, the expansion step labels the removed nodes
``V_i - V_{i+1}``.  By Lemma 6.4 a removed node ``v`` only needs the SCC
labels of its in- and out-neighbors (all of which are in ``V_{i+1}`` by the
recoverable property):

* if some SCC appears among both the in-neighbors and the out-neighbors,
  that SCC is ``SCC(v)`` — and by Lemma 6.2 it is the *only* such SCC;
* otherwise ``v`` is a singleton SCC.

Externally this is two ``augment`` pipelines (paper lines 8–14) — keep the
edges into removed nodes, attach ``SCC(u)`` to each by a sort + merge join,
regroup by ``(v, SCC, u)`` — one over ``E_i`` for in-neighbors and one over
the reversed ``E_i`` for out-neighbors, followed by a single co-scan that
intersects the two sorted SCC lists per removed node.  Sequential scans and
external sorts only.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple, Union

from repro.constants import AUGMENTED_EDGE_BYTES, SCC_RECORD_BYTES
from repro.core.config import ExtSCCConfig
from repro.core.contraction import ContractionLevel
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice
from repro.io.codecs import RecordStore, record_file_from_records
from repro.io.join import anti_join, cogroup, merge_join
from repro.io.memory import MemoryBudget
from repro.io.sort import external_sort_records, external_sort_stream, merge_runs

__all__ = ["expand_level", "augment"]

Record = Tuple[int, ...]


def augment(
    device: BlockDevice,
    edges: Union[EdgeFile, Iterable[Record]],
    v_next: NodeFile,
    scc_next: RecordStore,
    memory: MemoryBudget,
) -> RecordStore:
    """The paper's ``augment(E)`` (Algorithm 5, lines 8–14).

    Produces records ``(u, v, SCC(u))`` for every edge ``(u, v)`` of
    ``edges`` — an :class:`EdgeFile` or any edge-record stream (the caller
    passes a flipping generator for the reverse-graph augment, saving the
    reversed copy) — whose destination ``v`` is a *removed* node, sorted
    by ``(v, SCC(u), u)`` so a single scan can read each removed node's
    neighbor-SCC list in sorted order.

    The whole chain is one fused pipeline: the by-destination sort streams
    into the anti-join, the by-source sort streams into the label merge
    join, and only the final grouped file is materialized.

    Edges whose source has no label in ``scc_next`` (possible only for
    Type-1-trimmed neighbors, which are singleton SCCs that can never
    witness a shared SCC) are dropped by the inner merge join.
    """
    source = edges.scan() if isinstance(edges, EdgeFile) else iter(edges)
    # line 9: group edges by destination (streamed, not materialized).
    by_dst = external_sort_stream(
        device, source, 8, memory, key=lambda e: (e[1], e[0]), sort_field=1
    )
    # line 10: keep edges into removed nodes (V_{i+1} anti-join).
    into_removed = anti_join(by_dst, v_next.scan(), lambda e: e[1])
    # line 11: re-sort by the source endpoint (streamed).
    by_src = external_sort_stream(device, into_removed, 8, memory)

    # line 12: attach SCC(u) via a merge join with the label file.
    def augmented() -> Iterator[Record]:
        for edge, label_rec in merge_join(
            by_src, scc_next.scan(), lambda e: e[0], lambda r: r[0]
        ):
            yield (edge[0], edge[1], label_rec[1])

    # line 13: group by (v, SCC(u), u).
    return external_sort_records(
        device,
        augmented(),
        AUGMENTED_EDGE_BYTES,
        memory,
        key=lambda r: (r[1], r[2], r[0]),
        sort_field=1,
    )


def _scc_list(group: List[Record]) -> List[int]:
    """Distinct SCC labels of an augmented group (already sorted by SCC)."""
    labels: List[int] = []
    for record in group:
        scc = record[2]
        if not labels or labels[-1] != scc:
            labels.append(scc)
    return labels


def _intersect_sorted(a: List[int], b: List[int]) -> List[int]:
    """Intersection of two sorted unique lists."""
    out: List[int] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            out.append(a[i])
            i += 1
            j += 1
        elif a[i] < b[j]:
            i += 1
        else:
            j += 1
    return out


def expand_level(
    device: BlockDevice,
    level: ContractionLevel,
    scc_next: RecordStore,
    memory: MemoryBudget,
    config: ExtSCCConfig,
    delete_input: bool = True,
) -> RecordStore:
    """One expansion step: compute ``SCC_i`` from ``SCC_{i+1}``.

    Args:
        device: the simulated disk.
        level: the bundle produced by the matching contraction iteration.
        scc_next: ``(node, scc)`` records for ``V_{i+1}``, sorted by node.
        memory: the budget ``M``.
        config: pipeline configuration (``validate`` enables the Lemma 6.2
            uniqueness assertion).
        delete_input: delete ``scc_next`` once merged (the default).  A
            checkpointing caller passes ``False`` and deletes it only
            *after* the step's journal commit, so a crash mid-expansion
            still finds the previous level's labels intact.

    Returns:
        ``(node, scc)`` records for all of ``V_i``, sorted by node id.
    """
    # E'_in: in-neighbor SCCs of removed nodes (over E_i).
    def augment_in() -> RecordStore:
        return augment(device, level.edges, level.next_nodes, scc_next, memory)

    # E'_out: out-neighbor SCCs (over reversed E_i — in-neighbors of the
    # reverse graph are out-neighbors of G_i).  The flip happens in-flight
    # on the way into augment's first sort; no reversed copy hits the disk.
    def augment_out() -> RecordStore:
        flipped = ((v, u) for u, v in level.edges.scan())
        return augment(device, flipped, level.next_nodes, scc_next, memory)

    # The two augments read the same inputs and write disjoint outputs —
    # one barrier of two independent tasks when a worker pool is attached
    # (the serial backend preserves the original e_in-then-e_out order).
    pool = device.worker_pool
    if pool is not None and pool.workers > 1:
        e_in, e_out = pool.run([augment_in, augment_out])
    else:
        e_in = augment_in()
        e_out = augment_out()

    def removed_labels() -> Iterator[Record]:
        """Labels for removed nodes: 3-way co-scan with singleton default."""
        groups = cogroup(e_in.scan(), e_out.scan(), lambda r: r[1], lambda r: r[1])
        current = next(groups, None)
        for v in level.removed.scan():
            while current is not None and current[0] < v:  # type: ignore[operator]
                current = next(groups, None)
            if current is not None and current[0] == v:
                common = _intersect_sorted(
                    _scc_list(current[1]), _scc_list(current[2])
                )
                if config.validate and len(common) > 1:
                    raise AssertionError(
                        f"Lemma 6.2 violated: node {v} sees {len(common)} shared SCCs"
                    )
                yield (v, common[0]) if common else (v, v)
            else:
                # No surviving in- or out-edges: singleton SCC.
                yield (v, v)

    scc_del = record_file_from_records(
        device, device.temp_name("sccdel"), removed_labels(), SCC_RECORD_BYTES,
        sort_field=0,
    )
    e_in.delete()
    e_out.delete()

    # SCC_i = SCC_{i+1} ∪ SCC_del, sorted by node id.  Both inputs are
    # already node-sorted, so one merge pass suffices (paper line 6 sorts).
    merged = merge_runs([scc_next.scan(), scc_del.scan()])
    scc_i = record_file_from_records(
        device, device.temp_name("scc"), merged, SCC_RECORD_BYTES, sort_field=0
    )
    scc_del.delete()
    if delete_input:
        scc_next.delete()
    return scc_i
