"""Graph expansion: Algorithm 5.

Given ``G_i``, its contraction ``G_{i+1}``, and the SCC labels of every node
of ``V_{i+1}``, the expansion step labels the removed nodes
``V_i - V_{i+1}``.  By Lemma 6.4 a removed node ``v`` only needs the SCC
labels of its in- and out-neighbors (all of which are in ``V_{i+1}`` by the
recoverable property):

* if some SCC appears among both the in-neighbors and the out-neighbors,
  that SCC is ``SCC(v)`` — and by Lemma 6.2 it is the *only* such SCC;
* otherwise ``v`` is a singleton SCC.

Externally this is two ``augment`` pipelines (paper lines 8–14) — keep the
edges into removed nodes, attach ``SCC(u)`` to each by a sort + merge join,
regroup by ``(v, SCC, u)`` — one over ``E_i`` for in-neighbors and one over
the reversed ``E_i`` for out-neighbors, followed by a single co-scan that
intersects the two sorted SCC lists per removed node.  Sequential scans and
external sorts only.
"""

from __future__ import annotations

from operator import itemgetter

from typing import Iterable, Iterator, List, Tuple, Union

from repro.constants import AUGMENTED_EDGE_BYTES, SCC_RECORD_BYTES
from repro.core.config import ExtSCCConfig
from repro.core.contraction import ContractionLevel
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice
from repro.io.codecs import RecordStore, record_file_from_records
from repro.io.join import anti_join, cogroup, lookup_join
from repro.io.memory import MemoryBudget
from repro.io.sort import KEY_DST_AUX_SRC, KEY_DST_SRC, external_sort_records, external_sort_stream, merge_runs
from repro.plan import (
    ExtPlan,
    Materialize,
    MergeJoin,
    MergePasses,
    PlanExecutor,
    Rewrite,
    SortRuns,
)

__all__ = ["expand_level", "build_expand_plan", "augment"]

Record = Tuple[int, ...]


def augment(
    device: BlockDevice,
    edges: Union[EdgeFile, Iterable[Record]],
    v_next: NodeFile,
    scc_next: RecordStore,
    memory: MemoryBudget,
) -> RecordStore:
    """The paper's ``augment(E)`` (Algorithm 5, lines 8–14).

    Produces records ``(u, v, SCC(u))`` for every edge ``(u, v)`` of
    ``edges`` — an :class:`EdgeFile` or any edge-record stream (the caller
    passes a flipping generator for the reverse-graph augment, saving the
    reversed copy) — whose destination ``v`` is a *removed* node, sorted
    by ``(v, SCC(u), u)`` so a single scan can read each removed node's
    neighbor-SCC list in sorted order.

    The whole chain is one fused pipeline: the by-destination sort streams
    into the anti-join, the by-source sort streams into the label merge
    join, and only the final grouped file is materialized.

    Edges whose source has no label in ``scc_next`` (possible only for
    Type-1-trimmed neighbors, which are singleton SCCs that can never
    witness a shared SCC) are dropped by the inner merge join.
    """
    source = edges.scan() if isinstance(edges, EdgeFile) else iter(edges)
    # line 9: group edges by destination (streamed, not materialized).
    by_dst = external_sort_stream(
        device, source, 8, memory, key=KEY_DST_SRC, sort_field=1
    )
    # line 10: keep edges into removed nodes (V_{i+1} anti-join).
    into_removed = anti_join(by_dst, v_next.scan(), itemgetter(1))
    # line 11: re-sort by the source endpoint (streamed).
    by_src = external_sort_stream(device, into_removed, 8, memory)

    # line 12: attach SCC(u) via a join with the label file — a lookup
    # join, since the label file holds exactly one record per node.
    def augmented() -> Iterator[Record]:
        return (
            (edge[0], edge[1], label_rec[1])
            for edge, label_rec in lookup_join(
                by_src, scc_next.scan(), itemgetter(0), itemgetter(0)
            )
        )

    # line 13: group by (v, SCC(u), u).
    return external_sort_records(
        device,
        augmented(),
        AUGMENTED_EDGE_BYTES,
        memory,
        key=KEY_DST_AUX_SRC,
        sort_field=1,
    )


def _augment_ops(plan: ExtPlan, d: str, e: int, v: int) -> list:
    """Declare one augment pipeline's operators (``d`` is ``in``/``out``).

    Mirrors the cost model's per-augment terms exactly: two streamed
    edge sorts, the ``scan(v, SCC)`` label join, and the materialized
    ``(v, SCC, u)`` grouping sort.
    """
    p = f"E'_{d}"
    return [
        plan.add(SortRuns(f"{p} by-dst runs", inputs=("E_i",), records=e,
                          record_size=8, cost=("sort-runs", e, 8),
                          group=f"{d}-bydst")),
        plan.add(MergePasses(f"{p} by-dst merge", inputs=(f"{p} by-dst runs",),
                             records=e, record_size=8,
                             cost=("merge-passes", e, 8), group=f"{d}-bydst")),
        plan.add(Materialize(f"{p} by dst", inputs=(f"{p} by-dst merge",),
                             records=e, record_size=8,
                             cost=("sort-final", e, 8), group=f"{d}-bydst",
                             fusable=True)),
        plan.add(MergeJoin(f"{p} removed filter",
                           inputs=(f"{p} by dst", "V_next"), records=e,
                           record_size=8)),
        plan.add(SortRuns(f"{p} by-src runs", inputs=(f"{p} removed filter",),
                          records=e, record_size=8, cost=("sort-runs", e, 8),
                          group=f"{d}-bysrc")),
        plan.add(MergePasses(f"{p} by-src merge", inputs=(f"{p} by-src runs",),
                             records=e, record_size=8,
                             cost=("merge-passes", e, 8), group=f"{d}-bysrc")),
        plan.add(Materialize(f"{p} by src", inputs=(f"{p} by-src merge",),
                             records=e, record_size=8,
                             cost=("sort-final", e, 8), group=f"{d}-bysrc",
                             fusable=True)),
        plan.add(MergeJoin(f"{p} attach SCC(u)",
                           inputs=(f"{p} by src", "SCC_next"), records=v,
                           record_size=SCC_RECORD_BYTES,
                           cost=("scan", v, SCC_RECORD_BYTES))),
        plan.add(SortRuns(f"{p} grouped runs", inputs=(f"{p} attach SCC(u)",),
                          records=e, record_size=AUGMENTED_EDGE_BYTES,
                          cost=("sort-runs", e, AUGMENTED_EDGE_BYTES),
                          group=f"{d}-grouped")),
        plan.add(MergePasses(f"{p} grouped merge",
                             inputs=(f"{p} grouped runs",), records=e,
                             record_size=AUGMENTED_EDGE_BYTES,
                             cost=("merge-passes", e, AUGMENTED_EDGE_BYTES),
                             group=f"{d}-grouped")),
        plan.add(Materialize(p, inputs=(f"{p} grouped merge",), records=e,
                             record_size=AUGMENTED_EDGE_BYTES,
                             cost=("sort-final", e, AUGMENTED_EDGE_BYTES),
                             group=f"{d}-grouped")),
    ]


def build_expand_plan(
    device: BlockDevice,
    level: ContractionLevel,
    scc_next: RecordStore,
    memory: MemoryBudget,
    config: ExtSCCConfig,
    delete_input: bool = True,
) -> ExtPlan:
    """Declare one expansion step ``SCC_{i+1} -> SCC_i`` as a plan.

    Three stages: the two augment pipelines (one pooled barrier, like the
    pre-plan code), the removed-label co-scan, and the label merge whose
    ``Materialize`` declares the ``expand`` checkpoint role.  The operator
    DAG mirrors :meth:`CostModel.expansion_iteration` term for term.
    """
    e, v = level.num_edges, level.num_nodes
    i = level.level
    plan = ExtPlan(f"expand-{i}", phase=f"expansion/expand-{i}")
    srcs = [
        plan.add(Rewrite("E_i", records=e, record_size=8)),
        plan.add(Rewrite("V_next", records=level.next_nodes.num_nodes,
                         record_size=4)),
        plan.add(Rewrite("SCC_next", records=level.next_nodes.num_nodes,
                         record_size=SCC_RECORD_BYTES)),
    ]
    augment_ops = _augment_ops(plan, "in", e, v) + _augment_ops(plan, "out", e, v)

    # E'_in: in-neighbor SCCs of removed nodes (over E_i).
    def augment_in() -> RecordStore:
        return augment(device, level.edges, level.next_nodes, scc_next, memory)

    # E'_out: out-neighbor SCCs (over reversed E_i — in-neighbors of the
    # reverse graph are out-neighbors of G_i).  The flip happens in-flight
    # on the way into augment's first sort; no reversed copy hits the disk.
    def augment_out() -> RecordStore:
        # itemgetter(1, 0) flips each edge in C — no per-edge generator.
        flipped = map(itemgetter(1, 0), level.edges.scan())
        return augment(device, flipped, level.next_nodes, scc_next, memory)

    def run_augments(ctx: dict):
        # The two augments read the same inputs and write disjoint
        # outputs — one barrier of two independent tasks when a worker
        # pool is attached (the serial backend preserves the original
        # e_in-then-e_out order).
        pool = device.worker_pool
        if pool is not None and pool.workers > 1:
            return pool.run([augment_in, augment_out])
        return augment_in(), augment_out()

    plan.stage("augment", srcs + augment_ops, run_augments, barrier=True)

    label_ops = [
        plan.add(MergeJoin("removed 3-way co-scan",
                           inputs=("E'_in", "E'_out", "removed"),
                           records=v, record_size=SCC_RECORD_BYTES)),
        plan.add(Materialize("SCC_del", inputs=("removed 3-way co-scan",),
                             records=v, record_size=SCC_RECORD_BYTES,
                             cost=("write", v, SCC_RECORD_BYTES))),
    ]

    def run_labels(ctx: dict) -> RecordStore:
        e_in, e_out = ctx["augment"]

        def removed_labels() -> Iterator[Record]:
            """Labels for removed nodes: 3-way co-scan, singleton default."""
            scc_of = itemgetter(2)
            groups = cogroup(
                e_in.scan(), e_out.scan(), itemgetter(1), itemgetter(1)
            )
            current = next(groups, None)
            for node in level.removed.scan():
                while current is not None and current[0] < node:  # type: ignore[operator]
                    current = next(groups, None)
                if current is not None and current[0] == node:
                    # Set intersection of the two sides' SCC labels; only
                    # the minimum (and, under validation, the count) is
                    # needed, so the sorted-list walk is unnecessary.
                    common = set(map(scc_of, current[1])) & set(
                        map(scc_of, current[2])
                    )
                    if config.validate and len(common) > 1:
                        raise AssertionError(
                            f"Lemma 6.2 violated: node {node} sees "
                            f"{len(common)} shared SCCs"
                        )
                    yield (node, min(common)) if common else (node, node)
                else:
                    # No surviving in- or out-edges: singleton SCC.
                    yield (node, node)

        scc_del = record_file_from_records(
            device, device.temp_name("sccdel"), removed_labels(),
            SCC_RECORD_BYTES, sort_field=0,
        )
        e_in.delete()
        e_out.delete()
        return scc_del

    plan.stage("label-removed", label_ops, run_labels)

    merge_ops = [
        plan.add(Rewrite("label union", inputs=("SCC_next", "SCC_del"),
                         records=v, record_size=SCC_RECORD_BYTES)),
        plan.add(Materialize(f"SCC_{i}", inputs=("label union",), records=v,
                             record_size=SCC_RECORD_BYTES,
                             cost=("write", v, SCC_RECORD_BYTES),
                             checkpoint="expand")),
    ]

    def run_merge(ctx: dict) -> RecordStore:
        scc_del = ctx["label-removed"]
        # SCC_i = SCC_{i+1} ∪ SCC_del, sorted by node id.  Both inputs are
        # already node-sorted, so one merge pass suffices (paper line 6
        # sorts).
        merged = merge_runs([scc_next.scan(), scc_del.scan()])
        scc_i = record_file_from_records(
            device, device.temp_name("scc"), merged, SCC_RECORD_BYTES,
            sort_field=0,
        )
        scc_del.delete()
        if delete_input:
            scc_next.delete()
        return scc_i

    plan.stage("merge-labels", merge_ops, run_merge)
    return plan


def expand_level(
    device: BlockDevice,
    level: ContractionLevel,
    scc_next: RecordStore,
    memory: MemoryBudget,
    config: ExtSCCConfig,
    delete_input: bool = True,
) -> RecordStore:
    """One expansion step: compute ``SCC_i`` from ``SCC_{i+1}``.

    Args:
        device: the simulated disk.
        level: the bundle produced by the matching contraction iteration.
        scc_next: ``(node, scc)`` records for ``V_{i+1}``, sorted by node.
        memory: the budget ``M``.
        config: pipeline configuration (``validate`` enables the Lemma 6.2
            uniqueness assertion).
        delete_input: delete ``scc_next`` once merged (the default).  A
            checkpointing caller passes ``False`` and deletes it only
            *after* the step's journal commit, so a crash mid-expansion
            still finds the previous level's labels intact.

    Returns:
        ``(node, scc)`` records for all of ``V_i``, sorted by node id.

    Convenience wrapper over :func:`build_expand_plan` + the planner +
    the executor, mirroring :func:`~repro.core.contraction.contract`.
    """
    from repro.analysis.planner import optimize_plan  # cycle via cost_model
    from repro.core.contraction import _cost_model

    plan = build_expand_plan(
        device, level, scc_next, memory, config, delete_input=delete_input
    )
    optimize_plan(plan, _cost_model(device, memory), config)
    return PlanExecutor(device).execute(plan)
