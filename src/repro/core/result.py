"""SCC computation results.

Every solver in this package ultimately produces a mapping ``node -> SCC
label``.  Labels produced by different algorithms differ (Tarjan uses min
member ids, Ext-SCC uses representatives inherited through contraction
levels), so :class:`SCCResult` canonicalizes to *min member id per
component* and compares partitions, not raw labels.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Mapping, Tuple

__all__ = ["SCCResult"]


class SCCResult:
    """An SCC labeling of a node set.

    Args:
        labels: mapping ``node -> label``; two nodes share a label iff they
            are strongly connected.  Labels are canonicalized on
            construction to the minimum node id of each component.
    """

    def __init__(self, labels: Mapping[int, int]) -> None:
        self.labels: Dict[int, int] = self._canonicalize(labels)

    @staticmethod
    def _canonicalize(labels: Mapping[int, int]) -> Dict[int, int]:
        rep: Dict[int, int] = {}
        for node, label in labels.items():
            current = rep.get(label)
            if current is None or node < current:
                rep[label] = node
        return {node: rep[label] for node, label in labels.items()}

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "SCCResult":
        """Build from an iterable of ``(node, label)`` pairs."""
        return cls(dict(pairs))

    # -- structure ---------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of labeled nodes."""
        return len(self.labels)

    @property
    def num_sccs(self) -> int:
        """Number of components (including singletons)."""
        return len(set(self.labels.values()))

    def components(self) -> List[List[int]]:
        """Components as sorted node lists, ordered by representative."""
        groups: Dict[int, List[int]] = defaultdict(list)
        for node, label in self.labels.items():
            groups[label].append(node)
        return [sorted(groups[label]) for label in sorted(groups)]

    def component_of(self, node: int) -> List[int]:
        """The sorted member list of ``node``'s component."""
        label = self.labels[node]
        return sorted(n for n, l in self.labels.items() if l == label)

    def size_histogram(self) -> Dict[int, int]:
        """Mapping ``component size -> number of components of that size``."""
        sizes = Counter(Counter(self.labels.values()).values())
        return dict(sizes)

    @property
    def largest_size(self) -> int:
        """Size of the largest component (0 for an empty labeling)."""
        if not self.labels:
            return 0
        return max(Counter(self.labels.values()).values())

    @property
    def num_trivial(self) -> int:
        """Number of singleton components."""
        return self.size_histogram().get(1, 0)

    @property
    def num_nontrivial(self) -> int:
        """Number of components with at least two nodes."""
        return self.num_sccs - self.num_trivial

    # -- comparison --------------------------------------------------------

    def same_partition(self, other: "SCCResult") -> bool:
        """True when both results induce the same node partition."""
        return self.labels == other.labels

    def strongly_connected(self, u: int, v: int) -> bool:
        """True when ``u`` and ``v`` are in the same SCC."""
        return self.labels[u] == self.labels[v]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SCCResult):
            return NotImplemented
        return self.labels == other.labels

    def __hash__(self) -> int:  # results are comparable, not hashable state
        return hash(frozenset(self.labels.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SCCResult(nodes={self.num_nodes}, sccs={self.num_sccs}, "
            f"largest={self.largest_size})"
        )
