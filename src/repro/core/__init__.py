"""The paper's contribution: Ext-SCC / Ext-SCC-Op contract-and-expand
external SCC computation."""

from repro.core.config import ExtSCCConfig
from repro.core.contraction import ContractionLevel, contract, get_e, get_v
from repro.core.expansion import augment, expand_level
from repro.core.ext_scc import ExtSCC, ExtSCCOutput, IterationRecord, compute_sccs
from repro.core.operators import basic_key, make_key_fn, product_key
from repro.core.result import SCCResult
from repro.core.vertex_cover import BoundedCoverTable, external_vertex_cover

__all__ = [
    "ExtSCC",
    "ExtSCCConfig",
    "ExtSCCOutput",
    "IterationRecord",
    "compute_sccs",
    "SCCResult",
    "ContractionLevel",
    "contract",
    "get_v",
    "get_e",
    "expand_level",
    "augment",
    "basic_key",
    "product_key",
    "make_key_fn",
    "BoundedCoverTable",
    "external_vertex_cover",
]
