"""The ``>`` node-order operators of Definitions 5.1 and 7.1.

Get-V adds, for every edge, the *larger* endpoint under ``>`` to the vertex
cover.  The basic operator (Def. 5.1) orders by total degree with id
tie-break; the optimized operator (Def. 7.1) inserts ``deg_in * deg_out``
as a second criterion so that, among equal-degree nodes, the one whose
removal would create more new edges is *kept* and the cheap one is removed
— this is the edge-reduction lever of Ext-SCC-Op.

Both are exposed as *key functions*: ``u > v  iff  key(u) > key(v)``
(lexicographic tuple comparison), which is also exactly what the Type-2
bounded table orders by.
"""

from __future__ import annotations

from typing import Callable, Tuple

__all__ = ["basic_key", "product_key", "NodeKey", "OperatorInfo"]

NodeKey = Tuple[int, ...]

OperatorInfo = Tuple[int, ...]
"""Per-node operator payload carried through the Ed file: ``(deg,)`` for the
basic operator, ``(deg, deg_in * deg_out)`` for the optimized one."""


def basic_key(node_id: int, deg: int) -> NodeKey:
    """Definition 5.1: order by ``(deg, id)``."""
    return (deg, node_id)


def product_key(node_id: int, deg: int, product: int) -> NodeKey:
    """Definition 7.1: order by ``(deg, deg_in*deg_out, id)``."""
    return (deg, product, node_id)


def make_key_fn(product_operator: bool) -> Callable[[int, OperatorInfo], NodeKey]:
    """Return ``key(node_id, info)`` for the configured operator.

    ``info`` is the tuple of operator fields stored next to the node id in
    the ``V_d`` / ``E_d`` records: ``(deg,)`` or ``(deg, product)``.
    """
    if product_operator:
        return lambda node_id, info: (info[0], info[1], node_id)
    return lambda node_id, info: (info[0], node_id)
