"""External vertex cover selection (the node-selection core of Get-V).

The paper adapts Angel–Campigotto–Laforest [7]: scan every edge and add the
*larger* endpoint under the ``>`` operator to the cover.  The result is a
vertex cover (every edge contributes one endpoint) that provably excludes
the globally smallest node, which is what makes contraction progress
(Lemma 5.2).

:class:`BoundedCoverTable` implements the Type-2 reduction's in-memory
dictionary ``T``: it remembers up to ``s`` cover members, keeping the ``s``
*smallest* under ``>`` (small nodes are the likely removal candidates, so
remembering them prevents the most redundant cover additions).  Lookups may
miss (the table is bounded), which only ever makes the cover larger —
never incorrect.

:func:`external_vertex_cover` exposes the cover computation as a standalone
primitive over an edge file; it is the same external pipeline Get-V runs
(sorts + merge joins, O(sort(|E|)) I/Os, no O(|V|) memory).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.core.operators import NodeKey
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.memory import MemoryBudget

__all__ = ["BoundedCoverTable", "external_vertex_cover"]

_TABLE_ENTRY_BYTES = 16
"""Accounted size of one table entry (node id + key fields)."""


class BoundedCoverTable:
    """Bounded in-memory set of cover members, keeping the smallest keys.

    Args:
        capacity: maximum number of remembered nodes (``s`` in the paper).
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = max(0, capacity)
        self._keys: Dict[int, NodeKey] = {}
        # Max-heap on keys via negated tuples; entries go stale after
        # eviction and are skipped lazily.
        self._heap: List[Tuple[NodeKey, int]] = []

    @classmethod
    def from_memory(cls, nbytes: int) -> "BoundedCoverTable":
        """Size the table so it fits in ``nbytes`` of main memory."""
        return cls(nbytes // _TABLE_ENTRY_BYTES)

    def __contains__(self, node: int) -> bool:
        return node in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, node: int, key: NodeKey) -> None:
        """Remember ``node``; evict the largest-key member when full."""
        if self.capacity == 0 or node in self._keys:
            return
        self._keys[node] = key
        heapq.heappush(self._heap, (tuple(-k for k in key), node))
        while len(self._keys) > self.capacity:
            neg_key, victim = heapq.heappop(self._heap)
            stored = self._keys.get(victim)
            if stored is not None and tuple(-k for k in stored) == neg_key:
                del self._keys[victim]


def external_vertex_cover(
    edge_file: EdgeFile,
    memory: MemoryBudget,
    product_operator: bool = False,
    type2_reduction: bool = False,
) -> NodeFile:
    """Compute a vertex cover of ``edge_file`` with the [7] scheme.

    Runs Get-V's external pipeline (degree file, degree-augmented edge
    file, one cover scan, sort + dedupe) as a standalone primitive.

    Args:
        edge_file: the graph's edges on a simulated device.
        memory: the external-memory budget.
        product_operator: use Definition 7.1 instead of 5.1.
        type2_reduction: drop redundant cover members via the bounded table.

    Returns:
        A sorted, unique :class:`NodeFile` covering every non-self-loop
        edge.
    """
    from repro.core.config import ExtSCCConfig
    from repro.core.contraction import get_v

    config = ExtSCCConfig(
        product_operator=product_operator, type2_reduction=type2_reduction
    )
    eout = edge_file.sorted_by_src(memory)
    ein = edge_file.sorted_by_dst(memory)
    cover = get_v(edge_file.device, edge_file, ein, eout, memory, config)
    ein.delete()
    eout.delete()
    return cover
