"""Graph contraction: Get-V (Algorithm 3) and Get-E (Algorithm 4).

One contraction iteration turns ``G_i`` into ``G_{i+1}``:

1. **Get-V** selects ``V_{i+1}`` as a vertex cover of ``G_i`` — externally:
   sort edges into ``E_in``/``E_out``, co-scan them into a degree file
   ``V_d``, augment both endpoints of every edge with their degrees
   (``E_d``), then a single scan adds each edge's larger endpoint under the
   ``>`` operator.  The cover is sorted and deduplicated.  This guarantees
   the **recoverable** (cover) and **contractible** (the smallest node is
   never picked) properties — Lemmas 5.1/5.2.

2. **Get-E** builds ``E_{i+1}``: the preserved edges with both endpoints in
   ``V_{i+1}`` (two semi-joins and a sort), plus, for every removed node
   ``v``, the bypass edges ``nbr_in(v) × nbr_out(v)`` (a co-scan of the
   removed in- and out-edge groups).  This yields the **SCC-preservable**
   property — Lemma 5.3.

Section VII reductions hook in where the paper puts them: Type-1 trimming
inside the ``V_d`` co-scan, Type-2 inside the cover scan via the bounded
table, self-loop removal inside the ``E_add`` emission, parallel-edge
removal inside the ``E_in``/``E_out`` sorts, and the product-aware operator
inside the cover comparison.

Every step is a sequential scan or an external sort on the simulated
device; the I/O ledger shows zero random accesses.
"""

from __future__ import annotations

from itertools import chain, groupby, product
from operator import itemgetter

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.constants import NODE_RECORD_BYTES
from repro.core.config import ExtSCCConfig
from repro.core.operators import make_key_fn
from repro.core.vertex_cover import BoundedCoverTable
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice
from repro.io.codecs import RecordStore, create_record_file, record_file_from_records
from repro.io.join import anti_join, cogroup, lookup_join, semi_join
from repro.io.memory import MemoryBudget
from repro.io.parallel import shard_ranges
from repro.io.sort import KEY_DST_SRC, KEY_SRC_DST, external_sort_records, external_sort_stream
from repro.plan import (
    Dedupe,
    ExtPlan,
    Materialize,
    MergeJoin,
    MergePasses,
    PlanExecutor,
    Rewrite,
    Scan,
    SortRuns,
)

__all__ = [
    "ContractionLevel",
    "contract",
    "build_contract_plan",
    "get_v",
    "get_e",
    "build_degree_file",
]

# Default next-level size coefficients for the two Get-E operators whose
# inputs do not exist until the iteration runs (measured medians of the
# contraction traces; ``analysis.planner.plan_ext_scc`` uses the same).
NODE_RETENTION_EST = 0.72
EDGE_GROWTH_EST = 1.25

Record = Tuple[int, ...]


@dataclass
class ContractionLevel:
    """Everything one contraction iteration leaves behind for expansion.

    Attributes:
        level: iteration number ``i`` (1-based).
        edges: ``E_i`` — the edge file of ``G_i`` (input of the iteration).
        next_nodes: ``V_{i+1}`` — the cover, sorted.
        removed: ``V_i - V_{i+1}`` — the removed nodes, sorted.
        next_edges: ``E_{i+1}``.
        num_nodes: ``|V_i|``.
        num_edges: ``|E_i|`` (records, incl. duplicates).
    """

    level: int
    edges: EdgeFile
    next_nodes: NodeFile
    removed: NodeFile
    next_edges: EdgeFile
    num_nodes: int
    num_edges: int

    def cleanup(self) -> None:
        """Delete this level's output files after its expansion step.

        ``edges`` is intentionally not deleted here: it is either the
        caller's input file or the previous level's ``next_edges``, which
        that level's own cleanup removes.
        """
        self.next_nodes.delete()
        self.removed.delete()
        self.next_edges.delete()

    def stores(self) -> dict:
        """The level's files by role, as raw record stores — what the
        checkpoint journal describes and resume reopens."""
        return {
            "edges": self.edges.file,
            "next_nodes": self.next_nodes.file,
            "removed": self.removed.file,
            "next_edges": self.next_edges.file,
        }


def build_degree_file(
    device: BlockDevice,
    ein: EdgeFile,
    eout: EdgeFile,
    config: ExtSCCConfig,
    memory: Optional[MemoryBudget] = None,
) -> RecordStore:
    """``V_d``: one record per node with its degree fields, sorted by id.

    Records are ``(v, deg)`` under Definition 5.1 and ``(v, deg,
    deg_in*deg_out)`` under Definition 7.1.  With Type-1 trimming enabled,
    nodes with ``deg_in == 0`` or ``deg_out == 0`` are omitted, which
    removes them (and their edges) from the contracted graph — they are
    singleton SCCs (Lemma 7.1) and the expansion phase labels them so.

    With ``config.trim_rounds > 1`` (and ``memory`` provided for the extra
    sorts) the trimming *cascades*: after dropping the dead-end nodes, the
    incident edges are filtered out and degrees recomputed, exposing the
    next layer of dead ends — an extension beyond the paper's single pass.
    """
    current_ein, current_eout = ein, eout
    owns_edges = False
    rounds = max(1, config.trim_rounds) if config.trim_type1 else 1
    for round_number in range(1, rounds + 1):
        vd, trimmed = _degree_pass(device, current_ein, current_eout, config)
        last_round = (
            not config.trim_type1
            or not trimmed
            or round_number == rounds
            or memory is None
        )
        if last_round:
            if owns_edges:
                current_ein.delete()
                current_eout.delete()
            return vd
        next_ein, next_eout = _filter_to_survivors(
            device, current_eout, vd, memory
        )
        vd.delete()
        if owns_edges:
            current_ein.delete()
            current_eout.delete()
        current_ein, current_eout = next_ein, next_eout
        owns_edges = True
    raise AssertionError("unreachable")  # the loop always returns


def _degree_pass(
    device: BlockDevice,
    ein: EdgeFile,
    eout: EdgeFile,
    config: ExtSCCConfig,
) -> Tuple[RecordStore, bool]:
    """One degree-computation co-scan; returns (V_d, any-node-trimmed).

    With a worker pool attached, the two scans are *sharded*: each worker
    counts degrees over a contiguous block range of one sorted edge file,
    and the per-shard ``(node, count)`` partials — chained in block order
    with boundary groups summed — reproduce exactly the counts the single
    co-scan computes.  Every block is still read once, sequentially, so
    the ledger is identical to the serial pass at any shard width.
    """
    pool = device.worker_pool
    if pool is not None and pool.workers > 1:
        in_counts = _sharded_degree_counts(pool, ein, key_index=1)
        out_counts = _sharded_degree_counts(pool, eout, key_index=0)
    else:
        in_counts = _count_groups(ein.scan(), key_index=1)
        out_counts = _count_groups(eout.scan(), key_index=0)

    record_size = 12 if config.product_operator else 8
    trim = config.trim_type1
    product_op = config.product_operator
    trimmed = False

    def surviving() -> Iterator[Record]:
        # Full-outer merge of the two sorted (node, count) streams —
        # the count-level equivalent of the original edge-level cogroup —
        # inlined with the trim filter: one generator resumption per node
        # instead of two.  One-sided nodes are type-1 trimmable by
        # definition, so with ``trim`` they never even allocate a record.
        nonlocal trimmed
        a = next(in_counts, None)
        b = next(out_counts, None)
        while a is not None or b is not None:
            if b is None or (a is not None and a[0] < b[0]):
                node, deg_in, deg_out = a[0], a[1], 0
                a = next(in_counts, None)
            elif a is None or b[0] < a[0]:
                node, deg_in, deg_out = b[0], 0, b[1]
                b = next(out_counts, None)
            else:
                node, deg_in, deg_out = a[0], a[1], b[1]
                a = next(in_counts, None)
                b = next(out_counts, None)
            if trim and (deg_in == 0 or deg_out == 0):
                trimmed = True
                continue
            if product_op:
                yield node, deg_in + deg_out, deg_in * deg_out
            else:
                yield node, deg_in + deg_out

    vd = create_record_file(device, device.temp_name("vd"), record_size, sort_field=0)
    vd.extend(surviving())
    vd.close()
    return vd, trimmed


def _count_groups(records, key_index: int) -> Iterator[Tuple[int, int]]:
    """``(node, count)`` pairs of a stream sorted on field ``key_index``.

    ``groupby`` buckets the consecutive equal-key runs in C; Python
    resumes once per node, not once per edge.
    """
    return (
        (node, len(list(group)))
        for node, group in groupby(records, itemgetter(key_index))
    )


def _sharded_degree_counts(pool, edges: EdgeFile, key_index: int) -> Iterator[Tuple[int, int]]:
    """Per-shard degree partials over block ranges, merged back in order.

    A group spanning a shard boundary appears as the last partial of one
    shard and the first of the next; chaining shards in block order and
    summing adjacent equal nodes re-fuses it, so the merged stream equals
    the whole-file :func:`_count_groups` for any shard count.
    """
    store = edges.file

    def count_range(block_range: Tuple[int, int]) -> list:
        start, stop = block_range
        return list(_count_groups(store.scan_range(start, stop), key_index))

    partials = pool.map(count_range, shard_ranges(store.num_blocks, pool.workers))
    prev: Optional[int] = None
    count = 0
    for part in partials:
        for node, c in part:
            if node == prev:
                count += c
            else:
                if prev is not None:
                    yield prev, count
                prev, count = node, c
    if prev is not None:
        yield prev, count


def _filter_to_survivors(
    device: BlockDevice,
    eout: EdgeFile,
    vd: RecordStore,
    memory: MemoryBudget,
) -> Tuple[EdgeFile, EdgeFile]:
    """Drop edges touching trimmed nodes; return fresh (E_in, E_out).

    Fused pipeline: the by-destination sort streams straight into the
    destination semi-join, and the surviving records are *teed* — written
    to the new ``E_in`` file while simultaneously feeding the by-source
    sort's run formation — so neither the intermediate by-dst file nor a
    re-read of ``E_in`` is ever materialized.
    """
    survivors = lambda: (r[0] for r in vd.scan())  # noqa: E731 - tiny closure
    src_ok = semi_join(eout.scan(), survivors(), itemgetter(0))
    by_dst = external_sort_stream(
        device, src_ok, 8, memory, key=KEY_DST_SRC, sort_field=1
    )
    fully_ok = semi_join(by_dst, survivors(), itemgetter(1))
    filtered_ein = create_record_file(device, device.temp_name("tein"), 8, sort_field=1)

    def tee() -> Iterator[Record]:
        # Chunked so the E_in copy goes through the batch extend path; the
        # records, their order, and every block cut are those of per-record
        # appends — only the pricing granularity changes.
        chunk: List[Record] = []
        for record in fully_ok:
            chunk.append(record)
            if len(chunk) >= 1024:
                filtered_ein.extend(chunk)
                yield from chunk
                chunk = []
        if chunk:
            filtered_ein.extend(chunk)
            yield from chunk

    new_eout = external_sort_records(device, tee(), 8, memory)
    filtered_ein.close()
    return EdgeFile(filtered_ein), EdgeFile(new_eout)


def get_v(
    device: BlockDevice,
    edges: EdgeFile,
    ein: EdgeFile,
    eout: EdgeFile,
    memory: MemoryBudget,
    config: ExtSCCConfig,
) -> NodeFile:
    """Algorithm 3: select ``V_{i+1}`` (sorted, unique) from ``G_i``.

    Args:
        device: the simulated disk.
        edges: ``E_i`` (only used for naming; scans use ``ein``/``eout``).
        ein: ``E_i`` sorted by ``(dst, src)``.
        eout: ``E_i`` sorted by ``(src, dst)``.
        memory: the budget ``M``.
        config: toggles (see :class:`ExtSCCConfig`).
    """
    vd = build_degree_file(device, ein, eout, config, memory=memory)
    key_fn = make_key_fn(config.product_operator)
    info_width = 2 if config.product_operator else 1

    # E_d step 1: augment deg(u) on every edge (E_out join V_d on u) —
    # a lookup join, since V_d holds exactly one record per node.
    def ed1_records() -> Iterator[Record]:
        return (
            (edge[0], edge[1]) + node_rec[1:]  # (u, v, deg_u[, prod_u])
            for edge, node_rec in lookup_join(
                eout.scan(), vd.scan(), itemgetter(0), itemgetter(0)
            )
        )

    # E_d step 2, fused: the build join feeds the by-v sort's run formation
    # directly, and the sorted stream feeds the cover scan — neither E_d
    # copy (pre- or post-sort) is materialized.
    ed2_stream = external_sort_stream(
        device, ed1_records(), 8 + 4 * info_width, memory,
        key=KEY_DST_SRC, sort_field=1,
    )

    # E_d step 3 + cover scan fused: augment deg(v) and pick the larger
    # endpoint of every edge under the > operator.
    table_bytes = (
        config.type2_table_bytes if config.type2_table_bytes is not None else memory.nbytes
    )
    table = BoundedCoverTable.from_memory(table_bytes) if config.type2_reduction else None

    def cover_records() -> Iterator[Record]:
        for ed_rec, node_rec in lookup_join(
            ed2_stream, vd.scan(), itemgetter(1), itemgetter(0)
        ):
            u, v = ed_rec[0], ed_rec[1]
            if u == v:
                # A self-loop never forces its node into the cover
                # (Definition 5.1 compares distinct nodes; Lemma 5.2's
                # progress argument depends on this).
                continue
            ku = key_fn(u, ed_rec[2:])
            kv = key_fn(v, node_rec[1:])
            if ku > kv:
                larger, larger_key = u, ku
                smaller, smaller_key = v, kv
            else:
                larger, larger_key = v, kv
                smaller, smaller_key = u, ku
            if table is not None:
                if smaller in table or larger in table:
                    # Type-2: the edge is already covered.
                    continue
                table.add(larger, larger_key)
            yield (larger,)

    cover = external_sort_records(
        device,
        cover_records(),
        NODE_RECORD_BYTES,
        memory,
        unique=True,
        out_name=device.temp_name("vnext"),
    )
    vd.delete()
    return NodeFile(cover)


def get_e(
    device: BlockDevice,
    ein: EdgeFile,
    eout: EdgeFile,
    v_next: NodeFile,
    memory: MemoryBudget,
    config: ExtSCCConfig,
) -> EdgeFile:
    """Algorithm 4: build ``E_{i+1}`` from ``G_i`` and ``V_{i+1}``.

    ``E_{i+1} = E_pre ∪ E_add`` where ``E_pre`` keeps the edges with both
    endpoints in the cover and ``E_add`` bypasses every removed node ``v``
    with ``nbr_in(v) × nbr_out(v)``.
    """
    out = create_record_file(device, device.temp_name("enext"), 8, sort_field=None)

    # E_del (in): edges (u, v) with v removed, grouped by v (E_in order).
    def removed_in() -> Iterator[Record]:
        return anti_join(ein.scan(), v_next.scan(), itemgetter(1))

    # E_del (out): edges (v, w) with v removed, grouped by v (E_out order).
    def removed_out() -> Iterator[Record]:
        return anti_join(eout.scan(), v_next.scan(), itemgetter(0))

    in_stream: Iterator[Record] = removed_in()
    out_stream: Iterator[Record] = removed_out()
    if config.trim_type1:
        # Type-1 trimming can remove two adjacent nodes in one iteration,
        # so a removed node's neighbor is no longer guaranteed to be in the
        # cover.  Filter the deleted-edge lists down to cover neighbors
        # (sort + semi-join + sort back); a dropped neighbor is a trimmed
        # dead-end node whose paths cannot participate in any SCC.
        in_stream = _filter_neighbors(device, in_stream, v_next, memory, side=0, by_dst=True)
        out_stream = _filter_neighbors(device, out_stream, v_next, memory, side=1, by_dst=False)

    # E_add: for each removed v, bypass edges nbr_in(v) x nbr_out(v).
    drop_loops = config.remove_self_loops

    def bypass_groups() -> Iterator[Iterable[Record]]:
        for v, in_group, out_group in cogroup(
            in_stream, out_stream, itemgetter(1), itemgetter(0)
        ):
            # A self-loop on the removed node is not a neighbor.
            srcs = [u for u, _v in in_group if u != v]
            dsts = [w for _v2, w in out_group if w != v]
            if not srcs or not dsts:
                continue
            if drop_loops and not set(srcs).isdisjoint(dsts):
                yield [p for p in product(srcs, dsts) if p[0] != p[1]]
            else:
                # No endpoint is on both sides, so the cross product
                # cannot contain a self-loop; hand the C-level iterator
                # straight to the flattener — one generator resumption
                # per removed node, not one per bypass edge.
                yield product(srcs, dsts)

    out.extend(chain.from_iterable(bypass_groups()))

    # E_pre: edges with both endpoints in the cover — a fused
    # semi-join → sort → semi-join chain with no intermediate files.
    pre_sorted = external_sort_stream(
        device,
        semi_join(eout.scan(), v_next.scan(), itemgetter(0)),
        8,
        memory,
        key=KEY_DST_SRC,
        sort_field=1,
    )
    out.extend(semi_join(pre_sorted, v_next.scan(), itemgetter(1)))
    out.close()
    return EdgeFile(out)


def _filter_neighbors(
    device: BlockDevice,
    edges: Iterator[Record],
    v_next: NodeFile,
    memory: MemoryBudget,
    side: int,
    by_dst: bool,
) -> Iterator[Record]:
    """Keep deleted edges whose *neighbor* endpoint (``side``) is in the
    cover, restoring the original grouping order afterwards.

    A fully fused sort → semi-join → sort chain: the only blocks on disk
    are the two sorts' run files; no spill, filter, or regroup copies.
    """
    by_neighbor = external_sort_stream(
        device, edges, 8, memory, key=(KEY_SRC_DST if side == 0 else KEY_DST_SRC),
        sort_field=side,
    )
    filtered = semi_join(by_neighbor, v_next.scan(), itemgetter(side))
    group_key = KEY_DST_SRC if by_dst else None
    yield from external_sort_stream(
        device, filtered, 8, memory, key=group_key,
        sort_field=1 if by_dst else None,
    )


def build_contract_plan(
    device: BlockDevice,
    edges: EdgeFile,
    nodes: NodeFile,
    memory: MemoryBudget,
    config: ExtSCCConfig,
    level: int,
) -> ExtPlan:
    """Declare one contraction iteration ``G_i -> G_{i+1}`` as a plan.

    The operator DAG mirrors the cost model's Get-V / Get-E terms one to
    one (so an optimized plan's prediction sums to exactly
    :meth:`CostModel.contraction_iteration`); the four executable stages
    keep every PR 1 fused chain — and the PR 4 pooled sort barrier —
    intact, so executing the plan is byte-identical to the pre-plan
    pipeline.  The two operators over not-yet-built ``G_{i+1}`` files use
    the planner's retention/growth estimates; the executing caller
    overwrites their ``records`` with the measured sizes once the stage
    has run (predictions never influence execution).
    """
    i, n = level, level + 1
    e, v = edges.num_edges, nodes.num_nodes
    next_v = max(1, int(v * NODE_RETENTION_EST))
    next_e = max(0, int(e * EDGE_GROWTH_EST))
    vd_width = 12 if config.product_operator else 8
    ed_width = 8 + (8 if config.product_operator else 4)
    plan = ExtPlan(f"contract-{i}", phase=f"contraction/contract-{i}")

    # -- stage 1: sort E_i into E_out / E_in (one pooled barrier) ----------
    src = plan.add(Scan(f"E_{i}", records=e, record_size=8))
    eout_ops = [
        plan.add(SortRuns("E_out runs", inputs=(f"E_{i}",), records=e,
                          record_size=8, cost=("sort-runs", e, 8), group="eout")),
        plan.add(MergePasses("E_out merge", inputs=("E_out runs",), records=e,
                             record_size=8, cost=("merge-passes", e, 8),
                             group="eout")),
        plan.add(Materialize("E_out", inputs=("E_out merge",), records=e,
                             record_size=8, cost=("sort-final", e, 8),
                             group="eout")),
    ]
    ein_ops = [
        plan.add(SortRuns("E_in runs", inputs=(f"E_{i}",), records=e,
                          record_size=8, cost=("sort-runs", e, 8), group="ein")),
        plan.add(MergePasses("E_in merge", inputs=("E_in runs",), records=e,
                             record_size=8, cost=("merge-passes", e, 8),
                             group="ein")),
        plan.add(Materialize("E_in", inputs=("E_in merge",), records=e,
                             record_size=8, cost=("sort-final", e, 8),
                             group="ein")),
    ]

    def run_sort_edges(ctx: dict):
        unique = config.dedupe_parallel_edges
        pool = device.worker_pool
        if pool is not None and pool.workers > 1:
            # The two sorts read the same input and write disjoint
            # outputs, so they are one barrier of two independent tasks.
            # The serial backend runs them in exactly the original order
            # (eout, ein).
            eout, ein = pool.run(
                [
                    lambda: edges.sorted_by_src(memory, unique=unique),
                    lambda: edges.sorted_by_dst(memory, unique=unique),
                ]
            )
        else:
            eout = edges.sorted_by_src(memory, unique=unique)
            ein = edges.sorted_by_dst(memory, unique=unique)
        return eout, ein

    plan.stage("sort-edges", [src] + eout_ops + ein_ops, run_sort_edges,
               barrier=True)

    # -- stage 2: Get-V (Algorithm 3) --------------------------------------
    getv_ops = [
        plan.add(Scan("E_in degree scan", inputs=("E_in",), records=e,
                      record_size=8, cost=("scan", e, 8))),
        plan.add(Scan("E_out degree scan", inputs=("E_out",), records=e,
                      record_size=8, cost=("scan", e, 8))),
        plan.add(Rewrite("degree merge",
                         inputs=("E_in degree scan", "E_out degree scan"),
                         records=v, record_size=vd_width)),
    ]
    if config.trim_type1:
        getv_ops.append(plan.add(Rewrite("type-1 trim",
                                         inputs=("degree merge",))))
    getv_ops += [
        plan.add(Materialize("V_d", inputs=("degree merge",), records=v,
                             record_size=vd_width,
                             cost=("write", v, vd_width))),
        plan.add(MergeJoin("E_d: attach deg(u)", inputs=("E_out", "V_d"),
                           records=e, record_size=ed_width,
                           cost=("scan", e, ed_width))),
        plan.add(SortRuns("E_d runs", inputs=("E_d: attach deg(u)",),
                          records=e, record_size=ed_width,
                          cost=("sort-runs", e, ed_width), group="ed")),
        plan.add(MergePasses("E_d merge", inputs=("E_d runs",), records=e,
                             record_size=ed_width,
                             cost=("merge-passes", e, ed_width), group="ed")),
        plan.add(Materialize("E_d by dst", inputs=("E_d merge",), records=e,
                             record_size=ed_width,
                             cost=("sort-final", e, ed_width), group="ed",
                             fusable=True)),
        plan.add(MergeJoin("cover pick (>)", inputs=("E_d by dst", "V_d"),
                           records=e, record_size=4)),
    ]
    if config.type2_reduction:
        getv_ops.append(plan.add(Rewrite("type-2 table",
                                         inputs=("cover pick (>)",))))
    getv_ops += [
        plan.add(SortRuns("cover runs", inputs=("cover pick (>)",), records=e,
                          record_size=4, cost=("sort-runs", e, 4),
                          group="cover")),
        plan.add(MergePasses("cover merge", inputs=("cover runs",), records=e,
                             record_size=4, cost=("merge-passes", e, 4),
                             group="cover")),
        plan.add(Dedupe("cover dedupe", inputs=("cover merge",),
                        records=next_v, record_size=4)),
        plan.add(Materialize(f"V_{n}", inputs=("cover dedupe",),
                             records=next_v, record_size=4,
                             cost=("sort-final", e, 4), group="cover")),
    ]

    def run_get_v(ctx: dict):
        eout, ein = ctx["sort-edges"]
        return get_v(device, edges, ein, eout, memory, config)

    plan.stage("get-v", getv_ops, run_get_v)

    # -- stage 3: Get-E (Algorithm 4) --------------------------------------
    gete_ops = [
        plan.add(Scan("E_in removed-dst scan", inputs=("E_in", f"V_{n}"),
                      records=e, record_size=8, cost=("scan", e, 8))),
        plan.add(Scan("E_out removed-src scan", inputs=("E_out", f"V_{n}"),
                      records=e, record_size=8, cost=("scan", e, 8))),
    ]
    if config.trim_type1:
        gete_ops.append(plan.add(Rewrite(
            "neighbor filter",
            inputs=("E_in removed-dst scan", "E_out removed-src scan"),
        )))
    gete_ops += [
        plan.add(MergeJoin(
            "E_add bypass (in × out)",
            inputs=("E_in removed-dst scan", "E_out removed-src scan"),
        )),
        plan.add(MergeJoin("E_pre semi-join (src)", inputs=("E_out", f"V_{n}"),
                           records=e, record_size=8)),
        plan.add(SortRuns("E_pre runs", inputs=("E_pre semi-join (src)",),
                          records=e, record_size=8, cost=("sort-runs", e, 8),
                          group="epre")),
        plan.add(MergePasses("E_pre merge", inputs=("E_pre runs",), records=e,
                             record_size=8, cost=("merge-passes", e, 8),
                             group="epre")),
        plan.add(Materialize("E_pre by dst", inputs=("E_pre merge",),
                             records=e, record_size=8,
                             cost=("sort-final", e, 8), group="epre",
                             fusable=True)),
        plan.add(MergeJoin("E_pre semi-join (dst)",
                           inputs=("E_pre by dst", f"V_{n}"), records=e,
                           record_size=8)),
        plan.add(Scan(f"V_{n} scans", inputs=(f"V_{n}",), records=next_v,
                      record_size=4, cost=("scan", next_v, 4))),
        plan.add(Materialize(
            f"E_{n}",
            inputs=("E_add bypass (in × out)", "E_pre semi-join (dst)"),
            records=next_e, record_size=8, cost=("write", next_e, 8),
        )),
    ]

    def run_get_e(ctx: dict):
        eout, ein = ctx["sort-edges"]
        return get_e(device, ein, eout, ctx["get-v"], memory, config)

    plan.stage("get-e", gete_ops, run_get_e)

    # -- stage 4: removed set + the level bundle ---------------------------
    removed_ops = [
        plan.add(MergeJoin("removed anti-join", inputs=(f"V_{i}", f"V_{n}"),
                           records=v, record_size=4)),
        plan.add(Materialize(f"removed_{i}", inputs=("removed anti-join",),
                             records=v, record_size=4,
                             checkpoint="contract")),
    ]

    def run_level(ctx: dict) -> ContractionLevel:
        eout, ein = ctx["sort-edges"]
        v_next: NodeFile = ctx["get-v"]
        removed_file = record_file_from_records(
            device,
            device.temp_name("removed"),
            anti_join(((v_,) for v_ in nodes.scan()), v_next.scan(),
                      itemgetter(0)),
            NODE_RECORD_BYTES,
            sort_field=0,
        )
        ein.delete()
        eout.delete()
        return ContractionLevel(
            level=level,
            edges=edges,
            next_nodes=v_next,
            removed=NodeFile(removed_file),
            next_edges=ctx["get-e"],
            num_nodes=nodes.num_nodes,
            num_edges=edges.num_edges,
        )

    plan.stage("removed-set", removed_ops, run_level)
    return plan


def contract(
    device: BlockDevice,
    edges: EdgeFile,
    nodes: NodeFile,
    memory: MemoryBudget,
    config: ExtSCCConfig,
    level: int,
) -> ContractionLevel:
    """One full contraction iteration ``G_i -> G_{i+1}``.

    Builds ``E_in``/``E_out`` once and shares them between Get-V and Get-E
    (as the paper does), derives the removed set by an anti-join of the two
    sorted node files, and returns the :class:`ContractionLevel` bundle the
    expansion phase will need.

    Convenience wrapper: builds the iteration's plan, runs the planner's
    rewrites, and executes it.  :class:`~repro.core.ext_scc.ExtSCC` calls
    the builder directly so it can attach tracing and checkpoint hooks.
    """
    from repro.analysis.planner import optimize_plan  # cycle via cost_model

    plan = build_contract_plan(device, edges, nodes, memory, config, level)
    optimize_plan(plan, _cost_model(device, memory), config)
    return PlanExecutor(device).execute(plan)


def _cost_model(device: BlockDevice, memory: MemoryBudget):
    from repro.analysis.cost_model import CostModel  # cycle via ext_scc

    return CostModel(device.block_size, memory.nbytes)
