"""Named datasets: the paper's running example and the Table I families.

:func:`figure1_graph` is the 13-node, 20-edge graph of Figure 1 with its two
SCCs ``{b,c,d,e,f,g}`` and ``{i,j,k,l}``; tests replay the contraction trace
of Figure 4 and the expansion trace of Figure 5 on it.

``TABLE1`` records the paper's parameter ranges and defaults, scaled by
``SCALE = 1e-3`` on node-count-like quantities so pure-Python runs finish
(see DESIGN.md's substitution table); :func:`build_dataset` turns a family
name plus overrides into a generated graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.graph.generators import (
    GeneratedGraph,
    large_scc_graph,
    massive_scc_graph,
    small_scc_graph,
    webspam_like,
)

__all__ = [
    "figure1_graph",
    "FIGURE1_SCCS",
    "TABLE1",
    "Table1Row",
    "build_dataset",
    "DATASET_FAMILIES",
]

# Node labels of Figure 1, in the paper's drawing: a..m -> 0..12.
FIGURE1_LABELS = "abcdefghijklm"
_L = {c: i for i, c in enumerate(FIGURE1_LABELS)}

FIGURE1_SCCS: List[List[str]] = [list("bcdefg"), list("ijkl")]
"""The two non-trivial SCCs of Figure 1 (SCC1 and SCC2)."""


def figure1_graph(as_labels: bool = False) -> GeneratedGraph:
    """The running-example graph of Figure 1 (13 nodes, 20 edges).

    Edges are reconstructed from the paper's narrative: the SCC1 cycle
    b→c→d→e→f→g→b with chord paths (b→e via (b,c,d,e) and e→b via
    (e,f,g,b) are quoted in Example 2.1), the SCC2 ring over {i,j,k,l},
    and the connecting nodes a, h, m.

    Args:
        as_labels: return edges over letter labels instead of integer ids
            (useful for printing).
    """
    letter_edges: List[Tuple[str, str]] = [
        # SCC1 = {b, c, d, e, f, g}
        ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f"), ("f", "g"), ("g", "b"),
        ("g", "c"), ("e", "g"),
        # a feeds SCC1; h bridges SCC1 to SCC2; m hangs off SCC2
        ("a", "b"), ("f", "h"), ("h", "i"), ("g", "i"),
        # SCC2 = {i, j, k, l}
        ("i", "j"), ("j", "k"), ("k", "l"), ("l", "i"), ("j", "l"), ("k", "i"),
        ("j", "m"), ("l", "m"),
    ]
    if as_labels:
        return GeneratedGraph(letter_edges, 13, [sorted(s) for s in FIGURE1_SCCS])  # type: ignore[arg-type]
    edges = [(_L[u], _L[v]) for u, v in letter_edges]
    planted = [sorted(_L[c] for c in scc) for scc in FIGURE1_SCCS]
    return GeneratedGraph(edges, 13, planted, strict=True)


SCALE = 1e-3
"""Scale factor applied to the paper's node-count-like parameters."""


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table I, with the scaled sweep and default."""

    name: str
    paper_range: Tuple
    paper_default: object
    scaled_range: Tuple
    scaled_default: object


TABLE1: Dict[str, Table1Row] = {
    "num_nodes": Table1Row(
        "Size of |V|",
        ("25M", "50M", "100M", "150M", "200M"), "100M",
        (25_000, 50_000, 100_000, 150_000, 200_000), 100_000,
    ),
    "avg_degree": Table1Row(
        "Average Degree D", (2, 3, 4, 5, 6), 4, (2, 3, 4, 5, 6), 4,
    ),
    "memory": Table1Row(
        "Memory Size M",
        ("200M", "300M", "400M", "500M", "600M"), "400M",
        (200_000, 300_000, 400_000, 500_000, 600_000), 400_000,
    ),
    "massive_scc_size": Table1Row(
        "Size of Massive-SCC",
        ("200K", "300K", "400K", "500K", "600K"), "400K",
        (200, 300, 400, 500, 600), 400,
    ),
    "large_scc_size": Table1Row(
        "Size of Large-SCC", ("4K", "6K", "8K", "10K", "12K"), "8K",
        (40, 60, 80, 100, 120), 80,
    ),
    "small_scc_size": Table1Row(
        "Size of Small-SCC", (20, 30, 40, 50, 60), 40, (20, 30, 40, 50, 60), 40,
    ),
    "num_large_sccs": Table1Row(
        "Number of Large-SCCs", (30, 40, 50, 60, 70), 50, (30, 40, 50, 60, 70), 50,
    ),
    "num_small_sccs": Table1Row(
        "Number of Small-SCCs", ("6K", "8K", "10K", "12K", "14K"), "10K",
        (600, 800, 1000, 1200, 1400), 1000,
    ),
}
"""Table I, paper values next to the 1e-3-scaled simulation values."""


def _build_massive(num_nodes: int, avg_degree: float, scc_size: int,
                   scc_count: int, seed: int) -> GeneratedGraph:
    return massive_scc_graph(num_nodes, avg_degree, scc_size, seed=seed)


def _build_large(num_nodes: int, avg_degree: float, scc_size: int,
                 scc_count: int, seed: int) -> GeneratedGraph:
    return large_scc_graph(num_nodes, avg_degree, scc_size, scc_count, seed=seed)


def _build_small(num_nodes: int, avg_degree: float, scc_size: int,
                 scc_count: int, seed: int) -> GeneratedGraph:
    return small_scc_graph(num_nodes, avg_degree, scc_size, scc_count, seed=seed)


DATASET_FAMILIES: Dict[str, Callable[..., GeneratedGraph]] = {
    "massive-scc": _build_massive,
    "large-scc": _build_large,
    "small-scc": _build_small,
}
"""The three Table I families by name."""


def build_dataset(
    family: str,
    num_nodes: Optional[int] = None,
    avg_degree: Optional[float] = None,
    scc_size: Optional[int] = None,
    scc_count: Optional[int] = None,
    seed: int = 0,
) -> GeneratedGraph:
    """Build a Table I dataset with the scaled defaults, allowing overrides.

    Args:
        family: one of ``"massive-scc"``, ``"large-scc"``, ``"small-scc"``,
            or ``"webspam"``.
        num_nodes, avg_degree, scc_size, scc_count: overrides of the
            corresponding Table I defaults (scaled).
        seed: RNG seed.
    """
    if family == "webspam":
        return webspam_like(
            num_nodes=num_nodes or 50_000,
            avg_degree=avg_degree or 8.0,
            seed=seed,
        )
    try:
        builder = DATASET_FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown family {family!r}; choose from "
            f"{sorted(DATASET_FAMILIES) + ['webspam']}"
        ) from None
    defaults = {
        "massive-scc": (TABLE1["massive_scc_size"].scaled_default, 1),
        "large-scc": (TABLE1["large_scc_size"].scaled_default,
                      TABLE1["num_large_sccs"].scaled_default),
        "small-scc": (TABLE1["small_scc_size"].scaled_default,
                      TABLE1["num_small_sccs"].scaled_default),
    }[family]
    return builder(
        num_nodes or TABLE1["num_nodes"].scaled_default,
        avg_degree or TABLE1["avg_degree"].scaled_default,
        scc_size or defaults[0],
        scc_count or defaults[1],
        seed,
    )
