"""Gap-compressed edge storage (the WebGraph-style trick).

A *sorted* edge list compresses extremely well: store each source once
with its out-degree, then the strictly-increasing target list as varint
*gaps*.  Real crawls fit in 2–4 bytes per edge instead of 8, so every
sequential scan in the contract-and-expand pipeline touches proportionally
fewer blocks — the accounted sizes here reproduce that saving in the I/O
ledger.

:class:`CompressedEdgeFile` offers the same scan interface as
:class:`~repro.graph.edge_file.EdgeFile`; it is read-only and built from
edges sorted by ``(src, dst)``.  ``benchmarks/test_compression.py``
measures the scan savings on the workload families.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from repro.io.blocks import BlockDevice
from repro.io.memory import MemoryBudget
from repro.io.varfile import VarRecordFile, varint_size

__all__ = ["CompressedEdgeFile"]

Edge = Tuple[int, int]


class CompressedEdgeFile:
    """A read-only, gap-encoded edge file.

    One record per source node: ``(src, [targets])`` accounted as
    ``varint(src) + varint(deg) + varint(first) + Σ varint(gap_i)`` bytes.
    Parallel edges are preserved (gap 0 is legal).

    Build with :meth:`from_sorted_edges` (input must be sorted by
    ``(src, dst)``) or :meth:`from_edge_file` (sorts externally first).
    """

    def __init__(self, file: VarRecordFile, num_edges: int,
                 flipped: bool = False) -> None:
        self._file = file
        self.num_edges = num_edges
        self._flipped = flipped

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_sorted_edges(
        cls,
        device: BlockDevice,
        name: str,
        edges: Iterable[Edge],
        flipped: bool = False,
    ) -> "CompressedEdgeFile":
        """Encode an edge stream already sorted by ``(src, dst)``.

        With ``flipped=True`` the input pairs are stored as given but
        :meth:`scan` yields them swapped back — this encodes a
        destination-sorted list (``E_in``): feed ``(dst, src)`` pairs
        sorted by ``(dst, src)`` and scans return the original ``(src,
        dst)`` edges in ``E_in`` order.
        """
        file = VarRecordFile(device, name)
        num_edges = 0
        current_src: int | None = None
        targets: List[int] = []

        def emit() -> None:
            if current_src is None:
                return
            nbytes = varint_size(current_src) + varint_size(len(targets))
            nbytes += varint_size(targets[0])
            for prev, nxt in zip(targets, targets[1:]):
                nbytes += varint_size(nxt - prev)
            file.append((current_src, tuple(targets)), nbytes)

        last_edge: Edge | None = None
        for edge in edges:
            if last_edge is not None and edge < last_edge:
                file.close()
                file.delete()
                raise ValueError(
                    f"edges must be sorted by (src, dst); saw {edge} after {last_edge}"
                )
            last_edge = edge
            src, dst = edge
            if src != current_src:
                emit()
                current_src = src
                targets = []
            targets.append(dst)
            num_edges += 1
        emit()
        file.close()
        return cls(file, num_edges, flipped=flipped)

    @classmethod
    def from_edge_file(
        cls,
        edge_file,
        memory: MemoryBudget,
        name: str | None = None,
    ) -> "CompressedEdgeFile":
        """Sort an :class:`EdgeFile` externally, then encode it."""
        device = edge_file.device
        sorted_copy = edge_file.sorted_by_src(memory)
        result = cls.from_sorted_edges(
            device,
            name if name is not None else device.temp_name("cedges"),
            sorted_copy.scan(),
        )
        sorted_copy.delete()
        return result

    # -- reading -----------------------------------------------------------------

    @property
    def name(self) -> str:
        """The file's name on the device."""
        return self._file.name

    @property
    def num_blocks(self) -> int:
        """Blocks the compressed representation occupies."""
        return self._file.num_blocks

    @property
    def compressed_bytes(self) -> int:
        """Accounted payload size after compression."""
        return self._file.payload_bytes

    @property
    def uncompressed_bytes(self) -> int:
        """Accounted size of the plain 8-byte-per-edge representation."""
        return 8 * self.num_edges

    @property
    def compression_ratio(self) -> float:
        """``uncompressed / compressed`` (higher is better)."""
        if self.compressed_bytes == 0:
            return 1.0
        return self.uncompressed_bytes / self.compressed_bytes

    def scan(self) -> Iterator[Edge]:
        """Stream the edges back sequentially.

        Plain files yield ``(src, dst)`` in that sort order; ``flipped``
        files (an encoded ``E_in``) yield the original edges in
        ``(dst, src)`` order — matching a plain destination-sorted copy.
        """
        for payload in self._file.scan():
            key, values = payload  # type: ignore[misc]
            for value in values:
                yield (value, key) if self._flipped else (key, value)

    def scan_adjacency(self) -> Iterator[Tuple[int, Tuple[int, ...]]]:
        """Stream ``(src, sorted targets)`` groups directly."""
        for payload in self._file.scan():
            yield payload  # type: ignore[misc]

    def delete(self) -> None:
        """Remove the file from the device."""
        self._file.delete()
