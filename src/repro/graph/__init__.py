"""Graph layer: in-memory digraphs, graph files on the simulated disk,
synthetic generators, named datasets, and interchange formats."""

from repro.graph.compressed import CompressedEdgeFile
from repro.graph.digraph import DiGraph
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.graph.generators import (
    GeneratedGraph,
    complete_digraph,
    cycle_graph,
    large_scc_graph,
    massive_scc_graph,
    path_graph,
    planted_scc_graph,
    random_dag,
    random_digraph,
    rmat_graph,
    small_scc_graph,
    webspam_like,
)
from repro.graph.datasets import (
    DATASET_FAMILIES,
    FIGURE1_SCCS,
    TABLE1,
    Table1Row,
    build_dataset,
    figure1_graph,
)
from repro.graph.transforms import (
    induced_subgraph,
    merge_edge_files,
    relabel,
    remove_self_loops,
    subsample,
    symmetrize,
)
from repro.graph.io_formats import (
    dump_edge_file,
    load_edge_file,
    read_edge_binary,
    read_edge_text,
    write_edge_binary,
    write_edge_text,
)

__all__ = [
    "DiGraph",
    "CompressedEdgeFile",
    "EdgeFile",
    "NodeFile",
    "GeneratedGraph",
    "planted_scc_graph",
    "massive_scc_graph",
    "large_scc_graph",
    "small_scc_graph",
    "webspam_like",
    "random_digraph",
    "random_dag",
    "rmat_graph",
    "cycle_graph",
    "path_graph",
    "complete_digraph",
    "figure1_graph",
    "FIGURE1_SCCS",
    "TABLE1",
    "Table1Row",
    "build_dataset",
    "DATASET_FAMILIES",
    "subsample",
    "relabel",
    "induced_subgraph",
    "merge_edge_files",
    "symmetrize",
    "remove_self_loops",
    "write_edge_text",
    "read_edge_text",
    "write_edge_binary",
    "read_edge_binary",
    "load_edge_file",
    "dump_edge_file",
]
