"""A small in-memory directed graph.

Used by the reference SCC algorithms, by EM-SCC's per-partition solver, and
by tests.  It deliberately stays minimal: adjacency dictionaries over
hashable integer node ids, no attributes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

__all__ = ["DiGraph"]

Edge = Tuple[int, int]


class DiGraph:
    """Directed graph with integer node ids.

    Parallel edges collapse (adjacency is a set); self-loops are allowed
    (they never affect SCC structure).
    """

    def __init__(self, edges: Iterable[Edge] = (), nodes: Iterable[int] = ()) -> None:
        self._out: Dict[int, Set[int]] = {}
        self._in: Dict[int, Set[int]] = {}
        for v in nodes:
            self.add_node(v)
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction ------------------------------------------------------

    def add_node(self, v: int) -> None:
        """Ensure ``v`` exists (no-op when already present)."""
        if v not in self._out:
            self._out[v] = set()
            self._in[v] = set()

    def add_edge(self, u: int, v: int) -> None:
        """Add edge ``u -> v``, creating endpoints as needed."""
        self.add_node(u)
        self.add_node(v)
        self._out[u].add(v)
        self._in[v].add(u)

    # -- queries -----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Number of distinct directed edges."""
        return sum(len(nbrs) for nbrs in self._out.values())

    def nodes(self) -> Iterator[int]:
        """Iterate node ids (insertion order)."""
        return iter(self._out)

    def edges(self) -> Iterator[Edge]:
        """Iterate distinct edges as ``(u, v)`` pairs."""
        for u, nbrs in self._out.items():
            for v in nbrs:
                yield u, v

    def has_node(self, v: int) -> bool:
        """True when ``v`` is a node of the graph."""
        return v in self._out

    def has_edge(self, u: int, v: int) -> bool:
        """True when edge ``u -> v`` exists."""
        return u in self._out and v in self._out[u]

    def out_neighbors(self, v: int) -> Set[int]:
        """``nbr_out(v)``: successors of ``v``."""
        return self._out[v]

    def in_neighbors(self, v: int) -> Set[int]:
        """``nbr_in(v)``: predecessors of ``v``."""
        return self._in[v]

    def out_degree(self, v: int) -> int:
        """``deg_out(v)``."""
        return len(self._out[v])

    def in_degree(self, v: int) -> int:
        """``deg_in(v)``."""
        return len(self._in[v])

    def degree(self, v: int) -> int:
        """``deg(v) = deg_in(v) + deg_out(v)`` (the paper's total degree)."""
        return len(self._out[v]) + len(self._in[v])

    # -- derived graphs ----------------------------------------------------

    def reversed(self) -> "DiGraph":
        """The transpose graph (every edge flipped)."""
        g = DiGraph(nodes=self.nodes())
        for u, v in self.edges():
            g.add_edge(v, u)
        return g

    def subgraph(self, keep: Set[int]) -> "DiGraph":
        """The induced subgraph on the node set ``keep``."""
        g = DiGraph(nodes=(v for v in self.nodes() if v in keep))
        for u, v in self.edges():
            if u in keep and v in keep:
                g.add_edge(u, v)
        return g

    def edge_list(self) -> List[Edge]:
        """Materialize the distinct edges as a sorted list."""
        return sorted(self.edges())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(nodes={self.num_nodes}, edges={self.num_edges})"
