"""External edge-file transforms.

Dataset preparation at external-memory scale must itself be external:
subsampling (the Figure 6 sweep), relabeling node ids (anonymization /
densification of sparse id spaces), inducing subgraphs on a node set,
merging edge files, and symmetrizing.  Every transform here streams
through sorts, merge joins and sequential scans on the simulated device.
"""

from __future__ import annotations

from operator import itemgetter

import random
from typing import Iterator, Optional, Tuple

from repro.constants import EDGE_RECORD_BYTES
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.files import ExternalFile
from repro.io.join import merge_join, semi_join
from repro.io.memory import MemoryBudget
from repro.io.sort import KEY_DST_SRC, external_sort_records

__all__ = [
    "subsample",
    "relabel",
    "induced_subgraph",
    "merge_edge_files",
    "symmetrize",
    "remove_self_loops",
]

Edge = Tuple[int, int]


def subsample(
    edge_file: EdgeFile,
    fraction: float,
    seed: int = 0,
    out_name: Optional[str] = None,
) -> EdgeFile:
    """Keep each edge independently with probability ``fraction``.

    One sequential scan + write (Bernoulli sampling preserves streaming,
    unlike exact-count sampling which would need a shuffle).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    device = edge_file.device
    rng = random.Random(seed)
    name = out_name if out_name is not None else device.temp_name("sample")
    kept = (edge for edge in edge_file.scan() if rng.random() < fraction)
    return EdgeFile.from_edges(device, name, kept)


def relabel(
    edge_file: EdgeFile,
    mapping: ExternalFile,
    memory: MemoryBudget,
    out_name: Optional[str] = None,
) -> EdgeFile:
    """Rewrite both endpoints through a ``(old, new)`` mapping file.

    The mapping must be sorted by ``old`` and total over the edge file's
    endpoints; two sorts and two merge joins, as in EM-SCC's contraction
    rewrite.
    """
    device = edge_file.device

    def map_endpoint(edges: Iterator[Edge], endpoint: int) -> Iterator[Edge]:
        for edge, entry in merge_join(
            edges, mapping.scan(), itemgetter(endpoint), itemgetter(0)
        ):
            if endpoint == 0:
                yield (entry[1], edge[1])
            else:
                yield (edge[0], entry[1])

    by_src = edge_file.sorted_by_src(memory)
    half = external_sort_records(
        device, map_endpoint(by_src.scan(), 0), EDGE_RECORD_BYTES, memory,
        key=KEY_DST_SRC,
    )
    by_src.delete()
    name = out_name if out_name is not None else device.temp_name("relabel")
    result = EdgeFile.from_edges(device, name, map_endpoint(half.scan(), 1))
    half.delete()
    return result


def induced_subgraph(
    edge_file: EdgeFile,
    nodes: NodeFile,
    memory: MemoryBudget,
    out_name: Optional[str] = None,
) -> EdgeFile:
    """Keep edges with *both* endpoints in ``nodes`` (two semi-joins)."""
    device = edge_file.device
    by_src = edge_file.sorted_by_src(memory)
    src_ok = semi_join(by_src.scan(), nodes.scan(), itemgetter(0))
    half = external_sort_records(
        device, src_ok, EDGE_RECORD_BYTES, memory, key=KEY_DST_SRC
    )
    by_src.delete()
    name = out_name if out_name is not None else device.temp_name("induced")
    result = EdgeFile.from_edges(
        device, name, semi_join(half.scan(), nodes.scan(), itemgetter(1))
    )
    half.delete()
    return result


def merge_edge_files(
    first: EdgeFile,
    second: EdgeFile,
    out_name: Optional[str] = None,
) -> EdgeFile:
    """Concatenate two edge files (union with multiplicity)."""
    device = first.device
    name = out_name if out_name is not None else device.temp_name("union")
    out = ExternalFile.create(device, name, EDGE_RECORD_BYTES)
    out.extend(first.scan())
    out.extend(second.scan())
    out.close()
    return EdgeFile(out)


def symmetrize(
    edge_file: EdgeFile,
    memory: MemoryBudget,
    out_name: Optional[str] = None,
) -> EdgeFile:
    """Add the reverse of every edge and deduplicate.

    Turns the digraph into a symmetric one (every SCC becomes a weakly
    connected component) — useful for sanity baselines.
    """
    device = edge_file.device

    def both_directions() -> Iterator[Edge]:
        for u, v in edge_file.scan():
            yield (u, v)
            yield (v, u)

    name = out_name if out_name is not None else device.temp_name("sym")
    result = external_sort_records(
        device, both_directions(), EDGE_RECORD_BYTES, memory,
        unique=True, out_name=name,
    )
    return EdgeFile(result)


def remove_self_loops(
    edge_file: EdgeFile,
    out_name: Optional[str] = None,
) -> EdgeFile:
    """Drop ``(v, v)`` records with one sequential pass."""
    device = edge_file.device
    name = out_name if out_name is not None else device.temp_name("noloops")
    return EdgeFile.from_edges(
        device, name, (e for e in edge_file.scan() if e[0] != e[1])
    )
