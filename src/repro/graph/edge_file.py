"""Edge and node files on the simulated disk.

:class:`EdgeFile` wraps an :class:`~repro.io.files.ExternalFile` of
``(u, v)`` records and provides the handful of external operations every
algorithm in the paper starts from: sequential scans, sorting by source or
destination, reversal, deduplication, and derivation of the (sorted, unique)
node file.  :class:`NodeFile` wraps a sorted file of ``(v,)`` records.
"""

from __future__ import annotations

from operator import itemgetter

from typing import Iterable, Iterator, Optional, Tuple

from repro.constants import EDGE_RECORD_BYTES, NODE_RECORD_BYTES
from repro.io.blocks import BlockDevice
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget
from repro.io.sort import KEY_DST_SRC, external_sort_records

__all__ = ["EdgeFile", "NodeFile"]

Edge = Tuple[int, int]


class NodeFile:
    """A sorted, duplicate-free file of node ids.

    Args:
        file: the underlying external file of ``(v,)`` records, already
            sorted and unique.
    """

    def __init__(self, file: ExternalFile) -> None:
        self.file = file

    @classmethod
    def from_ids(
        cls,
        device: BlockDevice,
        name: str,
        ids: Iterable[int],
        memory: MemoryBudget,
        presorted: bool = False,
    ) -> "NodeFile":
        """Build a node file from an id stream, externally sorting unless
        the caller guarantees the stream is already sorted and unique."""
        records = ((v,) for v in ids)
        if presorted:
            return cls(ExternalFile.from_records(device, name, records, NODE_RECORD_BYTES))
        sorted_file = external_sort_records(
            device, records, NODE_RECORD_BYTES, memory, unique=True, out_name=name
        )
        return cls(sorted_file)

    @property
    def num_nodes(self) -> int:
        """Number of node ids in the file."""
        return self.file.num_records

    def scan(self) -> Iterator[int]:
        """Stream node ids in increasing order (sequential reads)."""
        return map(itemgetter(0), self.file.scan())

    def delete(self) -> None:
        """Remove the file from the device."""
        self.file.delete()

    def __len__(self) -> int:
        return self.num_nodes


class EdgeFile:
    """A file of directed edges ``(u, v)`` on the simulated disk."""

    def __init__(self, file: ExternalFile) -> None:
        self.file = file

    @classmethod
    def from_edges(
        cls,
        device: BlockDevice,
        name: str,
        edges: Iterable[Edge],
        overwrite: bool = False,
    ) -> "EdgeFile":
        """Write an edge stream to a new file with sequential writes."""
        return cls(
            ExternalFile.from_records(
                device, name, edges, EDGE_RECORD_BYTES, overwrite=overwrite
            )
        )

    @property
    def device(self) -> BlockDevice:
        """The device the file lives on."""
        return self.file.device

    @property
    def num_edges(self) -> int:
        """Number of edge records (parallel edges counted separately)."""
        return self.file.num_records

    @property
    def name(self) -> str:
        """The file's name on the device."""
        return self.file.name

    def scan(self) -> Iterator[Edge]:
        """Stream edges front to back with sequential reads."""
        return self.file.scan()  # type: ignore[return-value]

    def scan_blocks(self) -> Iterator[Tuple[Edge, ...]]:
        """Stream whole blocks of ``(u, v)`` records sequentially."""
        return self.scan_block_range(0, None)

    def scan_block_range(
        self, start: int, stop: Optional[int] = None
    ) -> Iterator[Tuple[Edge, ...]]:
        """Stream blocks ``start .. stop`` of ``(u, v)`` records.

        Normalizes the two store kinds to one block shape: fixed-width
        blocks hold the records directly, compressed blocks hold
        ``(record,)`` slots (unwrapped here — an edge record always has
        two fields, a slot exactly one, so the shapes cannot collide).
        The block-granular primitive of the semi-external reachability
        kernels; block counts and charges match :meth:`scan` exactly.
        """
        for block in self.file.scan_block_range(start, stop):
            if block and len(block[0]) == 1:
                yield tuple(slot[0] for slot in block)
            else:
                yield block  # type: ignore[misc]

    # -- external derivations ----------------------------------------------

    def sorted_by_src(
        self, memory: MemoryBudget, unique: bool = False, out_name: Optional[str] = None
    ) -> "EdgeFile":
        """``E_out``: edges sorted by ``(id(u), id(v))`` (paper, Alg. 3 l.3)."""
        return EdgeFile(
            external_sort_records(
                self.device, self.scan(), EDGE_RECORD_BYTES, memory,
                key=None, unique=unique, out_name=out_name, sort_field=0,
            )
        )

    def sorted_by_dst(
        self, memory: MemoryBudget, unique: bool = False, out_name: Optional[str] = None
    ) -> "EdgeFile":
        """``E_in``: edges sorted by ``(id(v), id(u))`` (paper, Alg. 3 l.2).

        Records stay in ``(u, v)`` orientation; only the sort key flips.
        """
        return EdgeFile(
            external_sort_records(
                self.device, self.scan(), EDGE_RECORD_BYTES, memory,
                key=KEY_DST_SRC, unique=unique, out_name=out_name,
                sort_field=1,
            )
        )

    def reversed_copy(self, out_name: Optional[str] = None) -> "EdgeFile":
        """``Ē``: every edge flipped, written with one scan + one write pass."""
        name = out_name if out_name is not None else self.device.temp_name("rev")
        return EdgeFile.from_edges(
            self.device, name, ((v, u) for u, v in self.scan())
        )

    def node_file(
        self, memory: MemoryBudget, out_name: Optional[str] = None
    ) -> NodeFile:
        """The sorted unique set of endpoint ids (``V`` derived from ``E``)."""
        ids: Iterator[int] = (x for u, v in self.scan() for x in (u, v))
        name = out_name if out_name is not None else self.device.temp_name("nodes")
        return NodeFile.from_ids(self.device, name, ids, memory)

    def deduplicated(
        self, memory: MemoryBudget, out_name: Optional[str] = None
    ) -> "EdgeFile":
        """Remove parallel edges with one external sort (Section VII)."""
        return self.sorted_by_src(memory, unique=True, out_name=out_name)

    def count_self_loops(self) -> int:
        """Number of ``(v, v)`` records, via one sequential scan."""
        return sum(1 for u, v in self.scan() if u == v)

    def delete(self) -> None:
        """Remove the file from the device."""
        self.file.delete()

    def __len__(self) -> int:
        return self.num_edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EdgeFile({self.name!r}, edges={self.num_edges})"
