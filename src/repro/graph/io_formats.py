"""Import/export between real filesystem graph formats and the simulator.

Two interchange formats are supported:

* **edge-list text** — one ``u v`` pair per line, ``#`` comments allowed
  (the format of SNAP and of the WEBSPAM-UK2007 distribution);
* **packed binary** — little-endian ``<II`` pairs, the compact on-disk form
  a production deployment would use.

These operate on the *real* filesystem and convert to/from the in-simulator
:class:`~repro.graph.edge_file.EdgeFile`; they let examples persist generated
workloads and let users bring their own graphs.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator, Tuple, Union

from repro.io.blocks import BlockDevice
from repro.graph.edge_file import EdgeFile

__all__ = [
    "write_edge_text",
    "read_edge_text",
    "write_edge_binary",
    "read_edge_binary",
    "load_edge_file",
    "dump_edge_file",
]

Edge = Tuple[int, int]
PathLike = Union[str, Path]

_EDGE_STRUCT = struct.Struct("<II")


def write_edge_text(path: PathLike, edges: Iterable[Edge]) -> int:
    """Write edges as ``u v`` lines; returns the number of edges written."""
    count = 0
    with open(path, "w", encoding="ascii") as f:
        for u, v in edges:
            f.write(f"{u} {v}\n")
            count += 1
    return count


def read_edge_text(path: PathLike) -> Iterator[Edge]:
    """Stream edges from a ``u v`` text file, skipping blanks and ``#`` lines."""
    with open(path, "r", encoding="ascii") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            yield int(parts[0]), int(parts[1])


def write_edge_binary(path: PathLike, edges: Iterable[Edge]) -> int:
    """Write edges as packed little-endian ``<II`` pairs; returns the count."""
    count = 0
    with open(path, "wb") as f:
        for u, v in edges:
            f.write(_EDGE_STRUCT.pack(u, v))
            count += 1
    return count


def read_edge_binary(path: PathLike) -> Iterator[Edge]:
    """Stream edges from a packed ``<II`` binary file."""
    with open(path, "rb") as f:
        while True:
            chunk = f.read(_EDGE_STRUCT.size)
            if not chunk:
                return
            if len(chunk) != _EDGE_STRUCT.size:
                raise ValueError(f"{path}: truncated edge record at end of file")
            yield _EDGE_STRUCT.unpack(chunk)  # type: ignore[misc]


def load_edge_file(
    device: BlockDevice, path: PathLike, name: str = "edges", binary: bool = False
) -> EdgeFile:
    """Load a real-filesystem edge list onto the simulated device."""
    edges = read_edge_binary(path) if binary else read_edge_text(path)
    return EdgeFile.from_edges(device, name, edges)


def dump_edge_file(edge_file: EdgeFile, path: PathLike, binary: bool = False) -> int:
    """Export a simulated edge file to the real filesystem."""
    if binary:
        return write_edge_binary(path, edge_file.scan())
    return write_edge_text(path, edge_file.scan())
