"""Synthetic graph generators for the paper's workloads.

Three families mirror Table I of the paper (Massive-SCC, Large-SCC,
Small-SCC): nodes are first assigned to planted SCCs, each planted SCC is
made strongly connected (a random Hamiltonian cycle over its members plus
random chords), and the remaining "filler" nodes and edges are added around
them.  In ``strict`` mode the filler edges only go from lower- to
higher-ranked groups, which guarantees the planted SCCs are exactly the
SCCs of the generated graph — convenient for tests; benchmarks use the
non-strict mode, matching the paper's "additional random nodes and edges".

A :func:`webspam_like` generator stands in for WEBSPAM-UK2007 (see
DESIGN.md): a bow-tie web graph with a giant core SCC, IN/OUT sets and
tendrils, with skewed out-degrees.

All generators take an explicit ``seed`` and are fully deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "GeneratedGraph",
    "planted_scc_graph",
    "massive_scc_graph",
    "large_scc_graph",
    "small_scc_graph",
    "webspam_like",
    "random_digraph",
    "random_dag",
    "rmat_graph",
    "cycle_graph",
    "path_graph",
    "complete_digraph",
]

Edge = Tuple[int, int]


@dataclass
class GeneratedGraph:
    """A generated edge list plus ground-truth metadata.

    Attributes:
        edges: the directed edge list (may contain parallel edges).
        num_nodes: number of nodes (ids are ``0 .. num_nodes - 1``).
        planted_sccs: the node sets of the planted SCCs (only exact SCCs
            when the generator ran in strict mode).
        strict: True when filler edges were rank-constrained so the planted
            SCCs are guaranteed to be the exact non-trivial SCCs.
    """

    edges: List[Edge]
    num_nodes: int
    planted_sccs: List[List[int]] = field(default_factory=list)
    strict: bool = False

    @property
    def num_edges(self) -> int:
        """Number of edge records."""
        return len(self.edges)

    @property
    def nodes(self) -> range:
        """The node id range ``0 .. num_nodes - 1``."""
        return range(self.num_nodes)


def _make_strongly_connected(members: Sequence[int], rng: random.Random,
                             extra_edges: int) -> List[Edge]:
    """Edges making ``members`` one SCC: a random cycle plus random chords."""
    if len(members) == 1:
        return []
    order = list(members)
    rng.shuffle(order)
    edges: List[Edge] = [
        (order[i], order[(i + 1) % len(order)]) for i in range(len(order))
    ]
    for _ in range(extra_edges):
        u = rng.choice(order)
        v = rng.choice(order)
        if u != v:
            edges.append((u, v))
    return edges


def planted_scc_graph(
    num_nodes: int,
    avg_degree: float,
    scc_sizes: Sequence[int],
    seed: int = 0,
    strict: bool = False,
) -> GeneratedGraph:
    """Generate a graph with planted SCCs per the paper's recipe.

    Args:
        num_nodes: total node count ``|V|``.
        avg_degree: target ``|E| / |V|`` (the paper's average degree D).
        scc_sizes: sizes of the planted SCCs; their sum must not exceed
            ``num_nodes``.
        seed: RNG seed.
        strict: constrain filler edges to a topological rank order so the
            planted SCCs are *exactly* the non-trivial SCCs.

    Returns:
        A :class:`GeneratedGraph`.
    """
    if sum(scc_sizes) > num_nodes:
        raise ValueError(
            f"planted SCCs need {sum(scc_sizes)} nodes but only {num_nodes} exist"
        )
    rng = random.Random(seed)
    node_ids = list(range(num_nodes))
    rng.shuffle(node_ids)

    edges: List[Edge] = []
    planted: List[List[int]] = []
    rank: Dict[int, int] = {}
    cursor = 0
    for group_index, size in enumerate(scc_sizes):
        members = node_ids[cursor : cursor + size]
        cursor += size
        planted.append(sorted(members))
        for v in members:
            rank[v] = group_index
        # Inside an SCC: cycle + ~1 chord per 2 members keeps it sparse.
        edges.extend(_make_strongly_connected(members, rng, extra_edges=size // 2))
    next_rank = len(scc_sizes)
    for v in node_ids[cursor:]:
        rank[v] = next_rank
        next_rank += 1

    target_edges = int(round(avg_degree * num_nodes))
    attempts = 0
    while len(edges) < target_edges and attempts < 20 * target_edges:
        attempts += 1
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v:
            continue
        if strict:
            if rank[u] == rank[v]:
                continue
            if rank[u] > rank[v]:
                u, v = v, u
        edges.append((u, v))
    return GeneratedGraph(edges, num_nodes, planted, strict=strict)


def _table1_graph(
    num_nodes: int,
    avg_degree: float,
    scc_size: int,
    scc_count: int,
    seed: int,
    strict: bool,
) -> GeneratedGraph:
    # Fit the requested SCC population into at most half the nodes: first
    # shrink the per-SCC size (floor 2), then drop surplus SCCs.
    budget = max(2, num_nodes // 2)
    size = max(2, min(scc_size, budget // max(1, scc_count)))
    count = min(scc_count, budget // size)
    sizes = [size] * max(1, count)
    return planted_scc_graph(num_nodes, avg_degree, sizes, seed=seed, strict=strict)


def massive_scc_graph(
    num_nodes: int = 100_000,
    avg_degree: float = 4.0,
    scc_size: int = 400,
    seed: int = 0,
    strict: bool = False,
) -> GeneratedGraph:
    """The paper's Massive-SCC family: one huge SCC (Table I, scaled 1e-3).

    Paper defaults: |V|=100M, D=4, one SCC of 400K nodes; here 100K nodes
    with one 400-node-per-1K-scaled SCC by default.
    """
    return _table1_graph(num_nodes, avg_degree, scc_size, 1, seed, strict)


def large_scc_graph(
    num_nodes: int = 100_000,
    avg_degree: float = 4.0,
    scc_size: int = 80,
    scc_count: int = 50,
    seed: int = 0,
    strict: bool = False,
) -> GeneratedGraph:
    """The paper's Large-SCC family: tens of mid-sized SCCs (Table I).

    Paper defaults: 50 SCCs of 8K nodes in a 100M-node graph; scaled 1e-3
    this is 50 SCCs of 80 nodes in a 100K-node graph.
    """
    return _table1_graph(num_nodes, avg_degree, scc_size, scc_count, seed, strict)


def small_scc_graph(
    num_nodes: int = 100_000,
    avg_degree: float = 4.0,
    scc_size: int = 40,
    scc_count: int = 1000,
    seed: int = 0,
    strict: bool = False,
) -> GeneratedGraph:
    """The paper's Small-SCC family: many small SCCs (Table I).

    Paper defaults: 10K SCCs of 40 nodes in a 100M-node graph; at the 1e-3
    node scale we keep the SCC size (40) and scale the count.
    """
    return _table1_graph(num_nodes, avg_degree, scc_size, scc_count, seed, strict)


def webspam_like(
    num_nodes: int = 50_000,
    avg_degree: float = 8.0,
    core_fraction: float = 0.3,
    in_fraction: float = 0.2,
    out_fraction: float = 0.2,
    seed: int = 0,
) -> GeneratedGraph:
    """A bow-tie web graph standing in for WEBSPAM-UK2007.

    The node set splits into CORE (one giant SCC), IN (reaches the core),
    OUT (reached from the core), and TENDRILS (everything else, mostly
    acyclic with a sprinkle of small planted SCCs).  Out-degrees are skewed
    (Zipf-like) as in real web crawls.

    Returns a :class:`GeneratedGraph` whose first planted SCC is the core.
    """
    rng = random.Random(seed)
    n_core = max(2, int(num_nodes * core_fraction))
    n_in = int(num_nodes * in_fraction)
    n_out = int(num_nodes * out_fraction)
    node_ids = list(range(num_nodes))
    rng.shuffle(node_ids)
    core = node_ids[:n_core]
    in_set = node_ids[n_core : n_core + n_in]
    out_set = node_ids[n_core + n_in : n_core + n_in + n_out]
    tendrils = node_ids[n_core + n_in + n_out :]

    edges: List[Edge] = []
    planted: List[List[int]] = [sorted(core)]
    # Core: one giant SCC with skewed internal degrees.
    edges.extend(_make_strongly_connected(core, rng, extra_edges=0))
    hubs = core[: max(1, n_core // 50)]
    target_core_edges = int(avg_degree * n_core * 0.6)
    while len(edges) < target_core_edges:
        u = rng.choice(hubs) if rng.random() < 0.5 else rng.choice(core)
        v = rng.choice(core)
        if u != v:
            edges.append((u, v))

    def _attach(source_pool: List[int], sink_pool: List[int], count: int) -> None:
        for _ in range(count):
            u = rng.choice(source_pool)
            v = rng.choice(sink_pool)
            if u != v:
                edges.append((u, v))

    if in_set:
        _attach(in_set, core + in_set, int(avg_degree * len(in_set) * 0.8))
        _attach(in_set, core, max(1, len(in_set) // 2))
    if out_set:
        _attach(core + out_set, out_set, int(avg_degree * len(out_set) * 0.8))
        _attach(core, out_set, max(1, len(out_set) // 2))

    # Tendrils: sparse, mostly acyclic, with a few small planted SCCs.
    i = 0
    while i + 4 < len(tendrils) and rng.random() < 0.3:
        members = tendrils[i : i + rng.randint(2, 5)]
        i += len(members)
        planted.append(sorted(members))
        edges.extend(_make_strongly_connected(members, rng, extra_edges=0))
    if tendrils:
        _attach(tendrils, node_ids, int(avg_degree * len(tendrils) * 0.4))

    # Top up to the target edge count with skewed random edges.
    target_edges = int(avg_degree * num_nodes)
    while len(edges) < target_edges:
        u = rng.choice(hubs) if rng.random() < 0.2 else rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u != v:
            edges.append((u, v))
    return GeneratedGraph(edges, num_nodes, planted, strict=False)


def random_digraph(num_nodes: int, num_edges: int, seed: int = 0,
                   allow_self_loops: bool = False) -> GeneratedGraph:
    """A uniform random directed multigraph G(n, m)."""
    rng = random.Random(seed)
    edges: List[Edge] = []
    while len(edges) < num_edges:
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v and not allow_self_loops:
            continue
        edges.append((u, v))
    return GeneratedGraph(edges, num_nodes)


def random_dag(num_nodes: int, num_edges: int, seed: int = 0) -> GeneratedGraph:
    """A random DAG (every SCC is a singleton) — the EM-SCC Case-2 input."""
    rng = random.Random(seed)
    labels = list(range(num_nodes))
    rng.shuffle(labels)  # hide the topological order from node ids
    edges: List[Edge] = []
    while len(edges) < num_edges:
        a = rng.randrange(num_nodes)
        b = rng.randrange(num_nodes)
        if a == b:
            continue
        if a > b:
            a, b = b, a
        edges.append((labels[a], labels[b]))
    return GeneratedGraph(edges, num_nodes)


def cycle_graph(num_nodes: int) -> GeneratedGraph:
    """A single directed cycle — one SCC spanning every node."""
    edges = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    return GeneratedGraph(edges, num_nodes, [list(range(num_nodes))], strict=True)


def path_graph(num_nodes: int) -> GeneratedGraph:
    """A directed path — every SCC is a singleton."""
    edges = [(i, i + 1) for i in range(num_nodes - 1)]
    return GeneratedGraph(edges, num_nodes, [], strict=True)


def complete_digraph(num_nodes: int) -> GeneratedGraph:
    """All ordered pairs — the worst case for vertex-cover contraction."""
    edges = [(u, v) for u in range(num_nodes) for v in range(num_nodes) if u != v]
    return GeneratedGraph(edges, num_nodes, [list(range(num_nodes))], strict=True)


def rmat_graph(
    scale: int,
    edge_factor: float = 8.0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    allow_self_loops: bool = False,
) -> GeneratedGraph:
    """An R-MAT recursive-matrix graph (Chakrabarti–Zhan–Faloutsos).

    The standard synthetic family for web-scale graph benchmarks: edges
    land in quadrants of the adjacency matrix recursively with
    probabilities ``a, b, c, d = 1 - a - b - c``, producing the heavy-tail
    degree skew of real crawls.  Graph500's parameters are the defaults.

    Args:
        scale: ``|V| = 2**scale``.
        edge_factor: ``|E| = edge_factor * |V|``.
        a, b, c: quadrant probabilities (top-left, top-right, bottom-left).
        seed: RNG seed.
        allow_self_loops: keep ``(v, v)`` edges instead of resampling.
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must sum to at most 1")
    rng = random.Random(seed)
    num_nodes = 1 << scale
    num_edges = int(edge_factor * num_nodes)
    edges: List[Edge] = []
    while len(edges) < num_edges:
        u = v = 0
        for _ in range(scale):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < a:
                pass
            elif r < a + b:
                v |= 1
            elif r < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        if u == v and not allow_self_loops:
            continue
        edges.append((u, v))
    return GeneratedGraph(edges, num_nodes)
