"""Retry/backoff policy for transient device faults.

A :class:`FaultPolicy` attaches to a block device (``device.attach_policy``)
and governs what the device's I/O paths do when an operation raises a
:class:`~repro.exceptions.TransientIOError`: how many times to retry, how
long to back off between attempts (exponential with deterministic jitter
from a seeded RNG — two runs with the same policy back off identically),
and when to give up and escalate a :class:`RetryExhaustedError` so a
checkpointed run can fail fast to the PR 3 resume path instead of hammering
a dead device.

Backoff is *accounted*, not slept, by default: the simulated seconds are
added to the health ledger's ``backoff_seconds`` (and to the per-phase
backoff budget that the ``phase_deadline`` escalation checks) so tests and
benchmarks stay instant while the ledger still shows exactly what a real
deployment would have waited.  Set ``sleep=True`` to really sleep.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Optional

__all__ = ["FaultPolicy", "DEFAULT_FAULT_POLICY"]


@dataclass(frozen=True)
class FaultPolicy:
    """Deterministic retry/backoff parameters for transient I/O faults.

    Args:
        max_retries: retries *after* the first attempt (so an op is tried
            at most ``max_retries + 1`` times) before escalating.
        backoff_base: backoff before the first retry, in seconds.
        backoff_factor: multiplier per further retry (exponential).
        jitter: fraction of the computed backoff added as deterministic
            jitter in ``[0, jitter)`` — derived from ``seed`` and the
            attempt token, never from global RNG state.
        seed: seed for the jitter derivation.
        phase_deadline: cap on cumulative backoff seconds within one
            top-level phase; crossing it escalates immediately even if
            attempts remain (the per-phase deadline of the fault model).
        task_timeout: per-task deadline, in seconds, for pool workers
            (``None`` disables the supervisor's timeout).
        sleep: really sleep the backoff instead of only accounting it.
    """

    max_retries: int = 3
    backoff_base: float = 0.001
    backoff_factor: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    phase_deadline: Optional[float] = None
    task_timeout: Optional[float] = None
    sleep: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_factor < 0 or self.jitter < 0:
            raise ValueError("backoff parameters must be non-negative")

    def backoff_seconds(self, attempt: int, token: int = 0) -> float:
        """Backoff before retry ``attempt`` (1-based), with jitter.

        ``token`` distinguishes concurrent retry loops (e.g. a file uid)
        so their jitter streams differ but each is fully deterministic.
        """
        if attempt < 1:
            return 0.0
        base = self.backoff_base * (self.backoff_factor ** (attempt - 1))
        if not self.jitter:
            return base
        digest = hashlib.sha256(
            f"{self.seed}:{token}:{attempt}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 + self.jitter * unit)

    def apply_backoff(self, attempt: int, token: int = 0) -> float:
        """Compute (and optionally really sleep) the backoff; returns it."""
        seconds = self.backoff_seconds(attempt, token)
        if self.sleep and seconds > 0:
            time.sleep(seconds)
        return seconds

    @classmethod
    def parse(cls, text: str) -> "FaultPolicy":
        """Build a policy from a CLI spec like
        ``"retries=5,backoff=0.01,factor=2,jitter=0.1,seed=7,deadline=30,timeout=5,sleep=1"``.

        Every key is optional; unknown keys raise ``ValueError`` with the
        accepted vocabulary, which argparse surfaces as a usage error.
        """
        kwargs: dict = {}
        keys = {
            "retries": ("max_retries", int),
            "backoff": ("backoff_base", float),
            "factor": ("backoff_factor", float),
            "jitter": ("jitter", float),
            "seed": ("seed", int),
            "deadline": ("phase_deadline", float),
            "timeout": ("task_timeout", float),
            "sleep": ("sleep", lambda v: v not in ("0", "false", "no")),
        }
        text = text.strip()
        if text:
            for part in text.split(","):
                if "=" not in part:
                    raise ValueError(
                        f"bad fault-policy item {part!r}: expected key=value"
                    )
                key, _, value = part.partition("=")
                key = key.strip()
                if key not in keys:
                    raise ValueError(
                        f"unknown fault-policy key {key!r} "
                        f"(accepted: {', '.join(sorted(keys))})"
                    )
                field, conv = keys[key]
                try:
                    kwargs[field] = conv(value.strip())
                except (TypeError, ValueError) as exc:
                    raise ValueError(
                        f"bad value for fault-policy key {key!r}: {value!r}"
                    ) from exc
        return cls(**kwargs)


DEFAULT_FAULT_POLICY = FaultPolicy()
"""The defaults used when ``--fault-policy`` is given with no overrides."""
