"""Crash-consistent checkpointing for the Ext-SCC pipeline.

The pipeline's own structure supplies the checkpoint boundaries: every
``contract-i`` materializes the next level's files, the semi-external solve
materializes the top-level labels, and every ``expand-i`` materializes the
next label file.  :class:`CheckpointManager` journals each boundary — the
names, sizes, and checksums of the files that phase leaves behind — into
the device's ``checkpoint_journal`` (persisted inside the manifest on a
:class:`~repro.io.persistent.PersistentBlockDevice`), following the
write-ahead discipline *commit, then delete*: a phase's inputs are only
retired after the entry describing its outputs is durable.

On restart :meth:`CheckpointManager.recover` finds the longest journal
prefix whose surviving files validate (existence, record/block counts, and
per-block checksums — the validation reads are charged to the ``recovery``
phase), truncates anything beyond it, deletes the partial outputs of the
interrupted phase, and hands :class:`~repro.core.ext_scc.ExtSCC` a
:class:`ResumeState` from which the run continues at the last durable
level instead of replaying the whole pipeline.

Journal commits perform **no simulated I/O** (checksums are maintained
incrementally by the device; the manifest write is host-filesystem work
outside the model), so enabling checkpointing leaves the I/O ledger of an
uninterrupted run byte-identical — the zero-cost-when-on invariant the CI
smoke gate checks.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.core.config import ExtSCCConfig
from repro.core.contraction import ContractionLevel
from repro.core.ext_scc import IterationRecord
from repro.exceptions import CheckpointError, CorruptBlockError
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.blocks import BlockDevice, DiskFile
from repro.io.codecs import CompressedRecordFile, RecordStore, resolve_codec
from repro.io.files import ExternalFile
from repro.io.memory import MemoryBudget
from repro.io.stats import IOSnapshot

__all__ = ["CheckpointManager", "ResumeState", "describe_store", "reopen_store"]

_RETIRED_ROLES = ("next_nodes", "removed", "next_edges")


def _disk_file(store: RecordStore) -> DiskFile:
    """The raw :class:`DiskFile` under either record-file kind."""
    if isinstance(store, CompressedRecordFile):
        return store._var._file
    return store._file


def describe_store(store: RecordStore) -> dict:
    """A JSON-able descriptor of a (closed) record file: enough to reopen
    it after a restart and to validate it was not damaged in between."""
    f = _disk_file(store)
    device = store.device
    desc = {
        "name": store.name,
        "record_size": store.record_size,
        "num_records": store.num_records,
        "num_blocks": f.num_blocks,
        "checksum": device.file_checksum(f),
    }
    if isinstance(store, CompressedRecordFile):
        desc["kind"] = "compressed"
        desc["codec"] = store.codec.name
        desc["gap_field"] = getattr(store.codec, "gap_field", None)
    else:
        desc["kind"] = "fixed"
    return desc


def reopen_store(device: BlockDevice, desc: dict) -> RecordStore:
    """Reattach to the file a :func:`describe_store` descriptor names."""
    if desc["kind"] == "fixed":
        return ExternalFile.open(device, desc["name"])
    codec = resolve_codec(
        desc["codec"], desc["record_size"], sort_field=desc.get("gap_field")
    )
    return CompressedRecordFile.open(
        device, desc["name"], desc["record_size"], codec
    )


@dataclass
class ResumeState:
    """Where a crashed run left off, reconstructed from the journal.

    Attributes:
        resumed: False for a fresh run (empty journal).
        nodes: the input/derived node file ``V_1`` (reopened), if journaled.
        iterations: completed contraction iterations (their records are
            replayed into the output without re-running them).
        levels: reconstructed :class:`ContractionLevel` bundles still
            awaiting expansion, ascending by level.
        semi_done: the semi-external solve already committed.
        scc_store: the current SCC label file (reopened) when ``semi_done``.
        frontier_edges / frontier_nodes: the contraction frontier
            ``E_{i+1}`` / ``V_{i+1}`` of the last committed iteration, for
            resuming mid-contraction.
    """

    resumed: bool = False
    nodes: Optional[NodeFile] = None
    iterations: List[IterationRecord] = field(default_factory=list)
    levels: List[ContractionLevel] = field(default_factory=list)
    semi_done: bool = False
    scc_store: Optional[RecordStore] = None
    frontier_edges: Optional[EdgeFile] = None
    frontier_nodes: Optional[NodeFile] = None


class CheckpointManager:
    """Journals Ext-SCC phase boundaries on a device and rebuilds runs.

    One manager serves one device; create it fresh after reopening a
    persistent directory (the journal travels inside the manifest) or
    reuse the device object across the simulated crash in tests.

    Args:
        device: the simulated disk holding both the data and the journal.
    """

    def __init__(self, device: BlockDevice) -> None:
        self.device = device
        self._verified: Dict[str, bool] = {}

    @property
    def journal(self) -> List[dict]:
        """The device's journal entries (authoritative, device-resident)."""
        return self.device.checkpoint_journal

    def _persist(self) -> None:
        """Make the journal durable (manifest sync on persistent devices;
        a no-op for the in-RAM device, whose journal shares the data's
        fate anyway).  Host-filesystem work — no simulated I/O."""
        sync = getattr(self.device, "sync", None)
        if sync is not None:
            sync()

    def reset(self) -> None:
        """Drop the journal (start the next run from scratch)."""
        self.device.checkpoint_journal = []
        self._persist()

    # -- commits (called by ExtSCC.run at phase boundaries) -----------------

    def begin(
        self,
        edges: EdgeFile,
        nodes: Optional[NodeFile],
        memory: MemoryBudget,
        config: ExtSCCConfig,
    ) -> None:
        """Journal the run header: inputs plus the parameters a resume must
        match (block size, memory budget, config fingerprint).  Files
        already on the device are recorded as ``preexisting`` so recovery
        never garbage-collects them."""
        self.journal.append({
            "entry": "begin",
            "block_size": self.device.block_size,
            "memory": memory.nbytes,
            "config": config.fingerprint(),
            "edges": describe_store(edges.file),
            "nodes": describe_store(nodes.file) if nodes is not None else None,
            "preexisting": self.device.list_files(),
        })
        self._persist()

    def commit_nodes(self, nodes: NodeFile) -> None:
        """Journal the node file derived from the edges (when the caller
        did not supply one)."""
        self.journal.append({"entry": "nodes", "nodes": describe_store(nodes.file)})
        self._persist()

    def commit_contract(self, level: ContractionLevel, record: IterationRecord) -> None:
        """Journal one completed contraction iteration and its outputs."""
        self.journal.append({
            "entry": "contract",
            "level": level.level,
            "files": {
                role: describe_store(store) for role, store in level.stores().items()
            },
            "meta": {
                "num_nodes": record.num_nodes,
                "num_edges": record.num_edges,
                "next_num_nodes": record.next_num_nodes,
                "next_num_edges": record.next_num_edges,
                "io": asdict(record.io),
            },
        })
        self._persist()

    def commit_semi(self, scc_store: RecordStore) -> None:
        """Journal the semi-external solve's label file."""
        self.journal.append({"entry": "semi", "scc": describe_store(scc_store)})
        self._persist()

    def commit_expand(self, level: ContractionLevel, scc_store: RecordStore) -> None:
        """Journal one completed expansion step.  The entry *retires* the
        previous label file and the level's own files — the caller deletes
        them only after this returns (commit, then delete)."""
        self.journal.append({
            "entry": "expand",
            "level": level.level,
            "scc": describe_store(scc_store),
        })
        self._persist()

    def finish(self) -> None:
        """The run completed; nothing is left to resume."""
        self.reset()

    def plan_hooks(
        self,
        record_factory=None,
        level: Optional[ContractionLevel] = None,
    ) -> Dict[str, "object"]:
        """Commit callbacks keyed by the checkpoint *role* a plan's
        ``Materialize`` operators declare, for
        :meth:`~repro.plan.PlanExecutor.execute`.

        Each callback receives the executing stage's result:

        * ``"contract"`` — the :class:`ContractionLevel`; ``record_factory``
          (required for this role) maps it to the :class:`IterationRecord`
          the journal entry embeds.
        * ``"semi"`` — the label :class:`RecordStore`.
        * ``"expand"`` — the new label store; ``level`` (required for this
          role) names the expanded level.

        Commits still do zero simulated I/O, so firing them from inside
        the executor leaves the ledger identical to the pre-plan
        phase-boundary call sites.
        """
        hooks: Dict[str, object] = {"semi": self.commit_semi}
        if record_factory is not None:
            hooks["contract"] = lambda lvl: self.commit_contract(
                lvl, record_factory(lvl)
            )
        if level is not None:
            hooks["expand"] = lambda store: self.commit_expand(level, store)
        return hooks

    # -- recovery -----------------------------------------------------------

    @staticmethod
    def _live_after(journal: List[dict], k: int) -> Dict[str, dict]:
        """Replay the first ``k`` entries; returns name -> descriptor of
        every file that must exist at that point."""
        live: Dict[str, dict] = {}
        level_files: Dict[int, dict] = {}
        scc_desc: Optional[dict] = None
        for entry in journal[:k]:
            kind = entry["entry"]
            if kind == "begin":
                live[entry["edges"]["name"]] = entry["edges"]
                if entry["nodes"] is not None:
                    live[entry["nodes"]["name"]] = entry["nodes"]
            elif kind == "nodes":
                live[entry["nodes"]["name"]] = entry["nodes"]
            elif kind == "contract":
                files = entry["files"]
                for role in _RETIRED_ROLES:
                    live[files[role]["name"]] = files[role]
                level_files[entry["level"]] = files
            elif kind == "semi":
                scc_desc = entry["scc"]
                live[scc_desc["name"]] = scc_desc
            elif kind == "expand":
                for role in _RETIRED_ROLES:
                    live.pop(level_files[entry["level"]][role]["name"], None)
                if scc_desc is not None:
                    live.pop(scc_desc["name"], None)
                scc_desc = entry["scc"]
                live[scc_desc["name"]] = scc_desc
        return live

    def _verify_desc(self, desc: dict) -> bool:
        """Validate one journaled file against the device (cached by name —
        files are immutable once journaled)."""
        name = desc["name"]
        cached = self._verified.get(name)
        if cached is not None:
            return cached
        ok = self._verify_uncached(desc)
        self._verified[name] = ok
        return ok

    def _verify_uncached(self, desc: dict) -> bool:
        device = self.device
        name = desc["name"]
        if not device.exists(name):
            return False
        f = device.open(name)
        if f.num_records != desc["num_records"] or f.num_blocks != desc["num_blocks"]:
            return False
        if desc.get("checksum") is None or device.file_checksum(f) is None:
            # No checksum recorded (legacy file): metadata had to suffice.
            return True
        crc = 0
        try:
            # Full sweep: every block is re-read (charged as sequential
            # recovery reads) and checked against its stored checksum —
            # this is what catches torn writes the metadata cannot see.
            for index in range(f.num_blocks):
                device.verify_block(f, index)
        except CorruptBlockError:
            return False
        crc = device.file_checksum(f)
        return crc == desc["checksum"]

    def recover(
        self,
        edges: EdgeFile,
        memory: MemoryBudget,
        config: ExtSCCConfig,
    ) -> ResumeState:
        """Validate the journal and rebuild the run's state.

        Finds the longest prefix of the journal whose live files all
        validate, truncates the rest, garbage-collects every file that is
        neither live nor preexisting (the partial outputs of the
        interrupted phase), and returns the :class:`ResumeState` to
        continue from.  An empty journal yields a fresh (non-resumed)
        state; incompatible run parameters raise :class:`CheckpointError`.
        """
        device = self.device
        journal = list(self.journal)
        if not journal:
            return ResumeState(resumed=False)
        header = journal[0]
        if header.get("entry") != "begin":
            raise CheckpointError("checkpoint journal has no header entry")
        self._check_header(header, edges, memory, config)

        valid_k = 0
        for k in range(len(journal), 0, -1):
            live = self._live_after(journal, k)
            if all(self._verify_desc(desc) for desc in live.values()):
                valid_k = k
                break
        if valid_k == 0:
            raise CheckpointError(
                "no valid checkpoint prefix: the journaled input files "
                "fail validation"
            )
        if valid_k < len(journal):
            del self.journal[valid_k:]
            self._persist()
            journal = journal[:valid_k]

        live = self._live_after(journal, valid_k)
        keep = set(live) | set(header["preexisting"])
        for name in device.list_files():
            if name not in keep:
                device.delete(name)  # deleting is free: no I/O charged
        remove_orphans = getattr(device, "remove_orphan_blocks", None)
        if remove_orphans is not None:
            remove_orphans()
        self._persist()
        return self._build_state(journal)

    def _check_header(
        self,
        header: dict,
        edges: EdgeFile,
        memory: MemoryBudget,
        config: ExtSCCConfig,
    ) -> None:
        """A resume under different parameters would rebuild different
        contraction levels than the journal describes — refuse."""
        if header["block_size"] != self.device.block_size:
            raise CheckpointError(
                f"journal was written with block size {header['block_size']}, "
                f"not {self.device.block_size}"
            )
        if header["memory"] != memory.nbytes:
            raise CheckpointError(
                f"journal was written with a {header['memory']}-byte memory "
                f"budget, not {memory.nbytes}"
            )
        if header["config"] != config.fingerprint():
            raise CheckpointError(
                "journal was written under a different ExtSCCConfig; resume "
                "with the original configuration or reset the checkpoint"
            )
        if header["edges"]["name"] != edges.name:
            raise CheckpointError(
                f"journal belongs to input {header['edges']['name']!r}, "
                f"not {edges.name!r}"
            )

    def _build_state(self, journal: List[dict]) -> ResumeState:
        device = self.device
        state = ResumeState(resumed=True)
        header = journal[0]
        nodes_desc = header["nodes"]
        level_files: Dict[int, dict] = {}
        level_meta: Dict[int, dict] = {}
        expanded: List[int] = []
        scc_desc: Optional[dict] = None
        for entry in journal[1:]:
            kind = entry["entry"]
            if kind == "nodes":
                nodes_desc = entry["nodes"]
            elif kind == "contract":
                meta = entry["meta"]
                state.iterations.append(IterationRecord(
                    level=entry["level"],
                    num_nodes=meta["num_nodes"],
                    num_edges=meta["num_edges"],
                    next_num_nodes=meta["next_num_nodes"],
                    next_num_edges=meta["next_num_edges"],
                    io=IOSnapshot(**meta["io"]),
                ))
                level_files[entry["level"]] = entry["files"]
                level_meta[entry["level"]] = meta
            elif kind == "semi":
                state.semi_done = True
                scc_desc = entry["scc"]
            elif kind == "expand":
                expanded.append(entry["level"])
                scc_desc = entry["scc"]
        if nodes_desc is not None:
            state.nodes = NodeFile(reopen_store(device, nodes_desc))
        for level_id in sorted(level_files):
            if level_id in expanded:
                continue
            files = level_files[level_id]
            meta = level_meta[level_id]
            state.levels.append(ContractionLevel(
                level=level_id,
                edges=EdgeFile(reopen_store(device, files["edges"])),
                next_nodes=NodeFile(reopen_store(device, files["next_nodes"])),
                removed=NodeFile(reopen_store(device, files["removed"])),
                next_edges=EdgeFile(reopen_store(device, files["next_edges"])),
                num_nodes=meta["num_nodes"],
                num_edges=meta["num_edges"],
            ))
        if scc_desc is not None:
            state.scc_store = reopen_store(device, scc_desc)
        if level_files and not state.semi_done:
            last = level_files[max(level_files)]
            state.frontier_edges = EdgeFile(reopen_store(device, last["next_edges"]))
            state.frontier_nodes = NodeFile(reopen_store(device, last["next_nodes"]))
        return state
