"""Deterministic fault injection for the simulated block devices.

:class:`FaultInjector` attaches to a :class:`~repro.io.blocks.BlockDevice`
(or :class:`~repro.io.persistent.PersistentBlockDevice`) the same way the
:class:`~repro.io.pool.SharedBufferPool` does, and raises
:class:`~repro.exceptions.SimulatedCrash` at an exactly reproducible point:
either the N-th block I/O after attachment (``crash_at_io``), or the first
block I/O attributed to a given phase label (``crash_in_phase``).  With
``torn=True`` an interrupted *write* additionally leaves a half-written
block behind — the checksum layer then surfaces it as a
:class:`~repro.exceptions.CorruptBlockError` on read, which is how torn
writes are detected in real storage systems.

The injector fires *before* the operation is charged to the ledger: the
simulated machine lost power mid-operation, so the I/O never completed.
Injectors are one-shot — after firing they go inert, so a resumed run on
the same device does not crash again unless re-armed.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.exceptions import SimulatedCrash

__all__ = ["FaultInjector"]


class FaultInjector:
    """A scheduled, reproducible crash on a simulated device.

    Args:
        crash_at_io: fire on the N-th block I/O after :meth:`attach`
            (1-based; reads and writes both count).
        crash_in_phase: fire on the first block I/O whose
            :class:`~repro.io.stats.IOStats` phase stack contains this
            label (e.g. ``"contract-2"``, ``"semi-scc"``, ``"expand-1"``).
        torn: when the interrupted operation is a write, leave half of it
            on the device before raising (a torn block).

    Exactly one of ``crash_at_io`` / ``crash_in_phase`` must be given.
    """

    def __init__(
        self,
        crash_at_io: Optional[int] = None,
        crash_in_phase: Optional[str] = None,
        torn: bool = False,
    ) -> None:
        if (crash_at_io is None) == (crash_in_phase is None):
            raise ValueError("give exactly one of crash_at_io / crash_in_phase")
        if crash_at_io is not None and crash_at_io < 1:
            raise ValueError(f"crash_at_io is 1-based, got {crash_at_io}")
        self.crash_at_io = crash_at_io
        self.crash_in_phase = crash_in_phase
        self.torn = torn
        self.ordinal = 0  # I/Os observed since attach
        self.fired = False

    def attach(self, device) -> "FaultInjector":
        """Install on ``device`` (counting starts here); returns self."""
        device.attach_injector(self)
        return self

    def _should_fire(self, device) -> bool:
        if self.crash_at_io is not None:
            return self.ordinal == self.crash_at_io
        return self.crash_in_phase in device.stats._phase_stack

    def on_io(
        self,
        device,
        f,
        is_write: bool,
        records: Optional[Sequence] = None,
        index: Optional[int] = None,
    ) -> None:
        """Device hook: called before every block operation completes.

        Raises :class:`SimulatedCrash` at the scheduled point; on a torn
        write the half-written block is left behind first (uncharged — the
        machine died mid-write).
        """
        if self.fired:
            return
        self.ordinal += 1
        if not self._should_fire(device):
            return
        self.fired = True
        if self.torn and is_write and records is not None:
            device._torn_write(f, records, index=index)
        stack = device.stats._phase_stack
        raise SimulatedCrash(self.ordinal, phase=stack[-1] if stack else None)
