"""Deterministic fault injection for the simulated block devices.

:class:`FaultInjector` attaches to a :class:`~repro.io.blocks.BlockDevice`
(or :class:`~repro.io.persistent.PersistentBlockDevice`) the same way the
:class:`~repro.io.pool.SharedBufferPool` does, and raises
:class:`~repro.exceptions.SimulatedCrash` at an exactly reproducible point:
either the N-th block I/O after attachment (``crash_at_io``), or the first
block I/O attributed to a given phase label (``crash_in_phase``).  With
``torn=True`` an interrupted *write* additionally leaves a half-written
block behind — the checksum layer then surfaces it as a
:class:`~repro.exceptions.CorruptBlockError` on read, which is how torn
writes are detected in real storage systems.

The injector fires *before* the operation is charged to the ledger: the
simulated machine lost power mid-operation, so the I/O never completed.
Injectors are one-shot — after firing they go inert, so a resumed run on
the same device does not crash again unless re-armed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.exceptions import ChannelOutageError, SimulatedCrash, TransientIOError

__all__ = ["FaultInjector", "FaultSpec", "FaultSchedule", "FAULT_KINDS"]


class FaultInjector:
    """A scheduled, reproducible crash on a simulated device.

    Args:
        crash_at_io: fire on the N-th block I/O after :meth:`attach`
            (1-based; reads and writes both count).
        crash_in_phase: fire on the first block I/O whose
            :class:`~repro.io.stats.IOStats` phase stack contains this
            label (e.g. ``"contract-2"``, ``"semi-scc"``, ``"expand-1"``).
        torn: when the interrupted operation is a write, leave half of it
            on the device before raising (a torn block).

    Exactly one of ``crash_at_io`` / ``crash_in_phase`` must be given.
    """

    def __init__(
        self,
        crash_at_io: Optional[int] = None,
        crash_in_phase: Optional[str] = None,
        torn: bool = False,
    ) -> None:
        if (crash_at_io is None) == (crash_in_phase is None):
            raise ValueError("give exactly one of crash_at_io / crash_in_phase")
        if crash_at_io is not None and crash_at_io < 1:
            raise ValueError(f"crash_at_io is 1-based, got {crash_at_io}")
        self.crash_at_io = crash_at_io
        self.crash_in_phase = crash_in_phase
        self.torn = torn
        self.ordinal = 0  # I/Os observed since attach
        self.fired = False

    def attach(self, device) -> "FaultInjector":
        """Install on ``device`` (counting starts here); returns self."""
        device.attach_injector(self)
        return self

    def _should_fire(self, device) -> bool:
        if self.crash_at_io is not None:
            return self.ordinal == self.crash_at_io
        return self.crash_in_phase in device.stats._phase_stack

    def on_io(
        self,
        device,
        f,
        is_write: bool,
        records: Optional[Sequence] = None,
        index: Optional[int] = None,
    ) -> None:
        """Device hook: called before every block operation completes.

        Raises :class:`SimulatedCrash` at the scheduled point; on a torn
        write the half-written block is left behind first (uncharged — the
        machine died mid-write).
        """
        if self.fired:
            return
        self.ordinal += 1
        if not self._should_fire(device):
            return
        self.fired = True
        if self.torn and is_write and records is not None:
            device._torn_write(f, records, index=index)
        stack = device.stats._phase_stack
        raise SimulatedCrash(self.ordinal, phase=stack[-1] if stack else None)


FAULT_KINDS = (
    "transient-read",
    "transient-write",
    "corrupt",
    "channel-outage",
    "worker-die",
    "worker-hang",
)
"""The fault taxonomy, beyond PR 3's fail-stop ``SimulatedCrash``:

``transient-read`` / ``transient-write``
    The operation raises :class:`TransientIOError` for ``failures``
    consecutive attempts, then succeeds (the simulated flaky ``EIO``).
``corrupt``
    A scheduled bit-flip in the targeted block's stored payload; the
    per-block CRC layer surfaces it as ``CorruptBlockError`` on read and a
    parity-equipped device read-repairs it.
``channel-outage``
    A whole stripe channel of a :class:`StripedDevice` goes down for
    ``duration`` device-operation attempts; reads are served degraded from
    parity, writes retry until the outage window expires.
``worker-die`` / ``worker-hang``
    A pool task fails at dispatch (crash, or a hang that trips the
    per-task deadline); the :class:`WorkerPool` supervisor re-dispatches.
"""

_WORKER_KINDS = ("worker-die", "worker-hang")
_DEVICE_KINDS = tuple(k for k in FAULT_KINDS if k not in _WORKER_KINDS)


@dataclass
class FaultSpec:
    """One scheduled fault.

    Device faults trigger on the first *eligible* first-attempt block
    operation at or after ordinal ``at_io`` (1-based, counted since
    attach; retries of a faulted operation do not advance the ordinal, so
    a schedule's later faults land on the same logical operations as they
    would in a retry-free run), or on the first eligible operation whose
    phase stack contains ``in_phase``.  Worker faults trigger on pool-task
    ordinal ``at_task`` or on the first task dispatched inside
    ``in_phase``.  Each spec fires exactly once.

    Args:
        kind: one of :data:`FAULT_KINDS`.
        at_io: 1-based device-operation ordinal trigger.
        in_phase: phase-label trigger (e.g. ``"contract-1"``).
        at_task: 1-based pool-task ordinal trigger (worker kinds).
        failures: for transient kinds, how many consecutive attempts of
            the targeted operation fail before it succeeds.
        channel: for ``channel-outage``, the stripe channel to take down
            (default: the channel of the triggering operation).
        duration: for ``channel-outage``, how many device-operation
            attempts the outage lasts (retries count, so a blocked write
            retried under the policy rides out the window).
    """

    kind: str
    at_io: Optional[int] = None
    in_phase: Optional[str] = None
    at_task: Optional[int] = None
    failures: int = 1
    channel: Optional[int] = None
    duration: int = 4
    fired: bool = False
    fired_at: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (one of {FAULT_KINDS})")
        if self.kind in _WORKER_KINDS:
            if (self.at_task is None) == (self.in_phase is None):
                raise ValueError(f"{self.kind} needs exactly one of at_task / in_phase")
        else:
            if (self.at_io is None) == (self.in_phase is None):
                raise ValueError(f"{self.kind} needs exactly one of at_io / in_phase")
            if self.at_io is not None and self.at_io < 1:
                raise ValueError(f"at_io is 1-based, got {self.at_io}")
        if self.failures < 1:
            raise ValueError(f"failures must be >= 1, got {self.failures}")
        if self.duration < 1:
            raise ValueError(f"duration must be >= 1, got {self.duration}")

    def _eligible(self, is_write: bool) -> bool:
        if self.kind == "transient-read":
            return not is_write
        if self.kind == "transient-write":
            return is_write
        if self.kind == "corrupt":
            return not is_write
        return True  # channel-outage hits reads and writes alike


class FaultSchedule:
    """A deterministic, seedable schedule of faults for one run.

    Attaches to a device like the :class:`FaultInjector`
    (``schedule.attach(device)`` / ``device.attach_schedule(schedule)``)
    and is consulted by the device's retry wrapper before every block
    operation attempt, and by the :class:`WorkerPool` at every task
    dispatch.  All triggering is by deterministic ordinals or phase
    labels — two runs with the same schedule fault identically.

    Thread-safe: ordinal bookkeeping is locked, exceptions are raised
    outside the lock.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.ordinal = 0  # first-attempt device operations since attach
        self.attempts = 0  # every attempt, retries included (outage clock)
        self.task_ordinal = 0  # pool tasks dispatched since attach
        self._pending_failures = 0  # transient failures left for current op
        self._outages: Dict[int, int] = {}  # channel -> expires at attempt #
        self._lock = threading.Lock()

    @classmethod
    def single(cls, kind: str, **kwargs) -> "FaultSchedule":
        """A schedule with exactly one fault (the chaos-matrix shape)."""
        return cls([FaultSpec(kind, **kwargs)])

    def attach(self, device) -> "FaultSchedule":
        """Install on ``device`` (counting starts here); returns self."""
        device.attach_schedule(self)
        return self

    @property
    def fired(self) -> List[FaultSpec]:
        """The specs that have fired so far, in schedule order."""
        return [s for s in self.specs if s.fired]

    # -- device hook -------------------------------------------------------

    def on_io(
        self,
        device,
        f,
        is_write: bool,
        records: Optional[Sequence] = None,
        index: Optional[int] = None,
        attempt: int = 0,
    ) -> None:
        """Called by the device before every block-operation attempt.

        Raises :class:`TransientIOError` / :class:`ChannelOutageError` for
        attempts that must fail, and injects ``corrupt`` damage into the
        targeted block (the CRC layer then surfaces it on the read).
        """
        action: Optional[tuple] = None
        with self._lock:
            self.attempts += 1
            if attempt == 0:
                self.ordinal += 1
                self._pending_failures = 0
            stack = device.stats._phase_stack
            channel = self._channel_of(device, f, index)
            # 1. An already-declared outage on this operation's channel.
            if channel is not None and channel in self._outages:
                if self.attempts <= self._outages[channel]:
                    action = ("outage", channel)
                else:
                    del self._outages[channel]
            # 2. A transient fault already latched onto this operation.
            if action is None and self._pending_failures > 0:
                self._pending_failures -= 1
                action = ("transient", None)
            # 3. New specs triggering on this attempt.
            if action is None and attempt == 0:
                for spec in self.specs:
                    if spec.fired or spec.kind in _WORKER_KINDS:
                        continue
                    if not spec._eligible(is_write):
                        continue
                    if not self._triggered(spec, stack):
                        continue
                    spec.fired = True
                    spec.fired_at = self.ordinal
                    if spec.kind in ("transient-read", "transient-write"):
                        self._pending_failures = spec.failures - 1
                        action = ("transient", None)
                    elif spec.kind == "corrupt":
                        action = ("corrupt", None)
                    elif spec.kind == "channel-outage":
                        target = spec.channel if spec.channel is not None else channel
                        if target is None:
                            # Unstriped device: degrade to a plain transient.
                            self._pending_failures = spec.duration - 1
                            action = ("transient", None)
                        else:
                            self._outages[target] = self.attempts + spec.duration
                            if target == channel:
                                action = ("outage", target)
                    break
        if action is None:
            return
        what, arg = action
        if what == "transient":
            raise TransientIOError(
                f"transient {'write' if is_write else 'read'} fault on "
                f"{getattr(f, 'name', f)!r}",
                attempt=attempt,
            )
        if what == "outage":
            raise ChannelOutageError(arg, attempt=attempt)
        # corrupt: damage the stored block in place, then let the read
        # proceed — the CRC check surfaces CorruptBlockError and the
        # device's repair path takes over.
        if index is not None:
            device._damage_block(f, index)

    def _triggered(self, spec: FaultSpec, stack: Sequence[str]) -> bool:
        if spec.at_io is not None:
            return self.ordinal >= spec.at_io
        return spec.in_phase in stack

    @staticmethod
    def _channel_of(device, f, index) -> Optional[int]:
        channel_index = getattr(device, "_channel_index", None)
        if channel_index is None or index is None:
            return None
        return channel_index(f, index)

    # -- worker hook -------------------------------------------------------

    def on_task(self, device) -> Optional[FaultSpec]:
        """Called by the pool at each task dispatch; returns the worker
        fault to simulate for this task, if one triggers."""
        with self._lock:
            self.task_ordinal += 1
            for spec in self.specs:
                if spec.fired or spec.kind not in _WORKER_KINDS:
                    continue
                if spec.at_task is not None:
                    if self.task_ordinal < spec.at_task:
                        continue
                elif device is None or spec.in_phase not in device.stats._phase_stack:
                    continue
                spec.fired = True
                spec.fired_at = self.task_ordinal
                return spec
        return None
