"""Crash-consistency subsystem: deterministic fault injection plus
checkpoint/resume for the Ext-SCC pipeline.

See :mod:`repro.recovery.fault` for the crash model and
:mod:`repro.recovery.checkpoint` for the journal format and recovery
procedure.
"""

from repro.recovery.checkpoint import (
    CheckpointManager,
    ResumeState,
    describe_store,
    reopen_store,
)
from repro.recovery.fault import FAULT_KINDS, FaultInjector, FaultSchedule, FaultSpec
from repro.recovery.policy import DEFAULT_FAULT_POLICY, FaultPolicy

__all__ = [
    "CheckpointManager",
    "DEFAULT_FAULT_POLICY",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPolicy",
    "FaultSchedule",
    "FaultSpec",
    "ResumeState",
    "describe_store",
    "reopen_store",
]
