"""Crash-consistency subsystem: deterministic fault injection plus
checkpoint/resume for the Ext-SCC pipeline.

See :mod:`repro.recovery.fault` for the crash model and
:mod:`repro.recovery.checkpoint` for the journal format and recovery
procedure.
"""

from repro.recovery.checkpoint import (
    CheckpointManager,
    ResumeState,
    describe_store,
    reopen_store,
)
from repro.recovery.fault import FaultInjector

__all__ = [
    "CheckpointManager",
    "FaultInjector",
    "ResumeState",
    "describe_store",
    "reopen_store",
]
