"""Plan-layer CI gates: the golden plan snapshot and the trace envelope.

Two properties of the PR 5 plan layer are cheap to check at benchmark
scale and catastrophic to lose silently:

* **Plan stability** — the optimized operator DAG ``--explain`` prints
  for the Fig. 6 smoke point is deterministic (stable labels, no runtime
  identifiers), so its rendering is committed as
  ``results/fig6_smoke.plan.txt`` and exact-matched here.  Any planner
  change that alters the DAG — a new rewrite, a reordered operator, a
  changed prediction — must come with a reviewed regeneration of the
  golden file, never as silent drift.
* **Trace envelope** — after a run, the byte-calibrated cost model must
  re-price the *executed* plans (their size estimates trued up to the
  measured ``|V_i|``/``|E_i|``) to within 15% of the trace ledger's
  measured total, and each top-level phase to within 20% — or, for a
  phase, within 15% of the *run's* measured total in absolute blocks.
  The absolute guard is empirical: at smoke scale the semi-external
  hand-off is tens of blocks (its label-file write, which Theorem 6.1
  does not price, dominates the relative error) and the expansion
  augments benefit from replacement selection forming far fewer runs
  than the closed form's ``m/2M`` (the same data dependence
  ``test_cost_model`` documents).  Both drifts are bounded in absolute
  terms; a prediction bug localized to one phase that actually matters —
  more than 15% of the run mispriced — still fails, even when it hides
  inside an accurate total.
"""

from conftest import RESULTS_DIR

from repro.analysis import CostModel
from repro.analysis.planner import optimize_plan, predict_plan
from repro.bench import (
    BLOCK_SIZE,
    memory_for_ratio,
    shuffled_edges,
    subsample_edges,
    webspam_graph,
)
from repro.core import ExtSCC, ExtSCCConfig
from repro.core.contraction import build_contract_plan
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io import BlockDevice, MemoryBudget

GOLDEN = RESULTS_DIR / "fig6_smoke.plan.txt"
CANDIDATE = RESULTS_DIR / "fig6_smoke.plan.candidate.txt"

MEMORY_RATIO = 0.47  # Fig. 6's default memory, as in test_fig6_webspam_size
SMOKE_PERCENT = 20   # the 20% point CI runs


def _smoke_workload():
    graph = webspam_graph()
    edges = subsample_edges(shuffled_edges(graph), SMOKE_PERCENT)
    memory_bytes = memory_for_ratio(graph.num_nodes, MEMORY_RATIO)
    return graph, edges, memory_bytes


def _render_smoke_plan() -> str:
    """Build and optimize the contract-1 plan exactly as ``--explain``
    does: declaratively, from the workload's sizes, without running."""
    graph, edges, memory_bytes = _smoke_workload()
    device = BlockDevice(block_size=BLOCK_SIZE)
    memory = MemoryBudget(memory_bytes)
    edge_file = EdgeFile.from_edges(device, "input-edges", edges)
    node_file = NodeFile.from_ids(
        device, "input-nodes", range(graph.num_nodes), memory, presorted=True
    )
    config = ExtSCCConfig.optimized()
    plan = build_contract_plan(
        device, edge_file, node_file, memory, config, level=1
    )
    optimize_plan(plan, CostModel(BLOCK_SIZE, memory_bytes), config)
    return plan.render() + "\n"


def test_plan_golden_fig6_smoke(benchmark):
    rendered = benchmark.pedantic(_render_smoke_plan, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    if not GOLDEN.exists():
        GOLDEN.write_text(rendered)
        raise AssertionError(
            f"{GOLDEN} did not exist; wrote the current plan. Review it and "
            "commit it as the golden snapshot."
        )
    golden = GOLDEN.read_text()
    if rendered != golden:
        CANDIDATE.write_text(rendered)
        raise AssertionError(
            "optimized plan drifted from the golden snapshot "
            f"({GOLDEN.name}). If the change is intentional, review "
            f"{CANDIDATE.name} and replace the golden file with it."
        )
    CANDIDATE.unlink(missing_ok=True)


def _run_and_reprice(config):
    """Run one variant on the smoke point, then re-price its executed
    plans with the byte-calibrated model (the test_cost_model pattern)."""
    graph, edges, memory_bytes = _smoke_workload()
    device = BlockDevice(block_size=BLOCK_SIZE)
    memory = MemoryBudget(memory_bytes)
    edge_file = EdgeFile.from_edges(device, "E", edges)
    node_file = NodeFile.from_ids(
        device, "V", range(graph.num_nodes), memory, presorted=True
    )
    out = ExtSCC(config).run(device, edge_file, memory, nodes=node_file)
    calibration = {
        width: stored / count
        for width, (count, stored) in device.stats.bytes_by_width.items()
        if count
    }
    model = CostModel(BLOCK_SIZE, memory_bytes, bytes_per_record=calibration)
    predicted_by_phase = {}
    for plan in out.plans:
        predict_plan(plan, model)
        top = plan.phase.split("/", 1)[0]
        predicted_by_phase[top] = (
            predicted_by_phase.get(top, 0) + plan.total_predicted
        )
    measured_by_phase = {
        top: bucket["measured"] for top, bucket in out.trace.by_phase().items()
    }
    return predicted_by_phase, measured_by_phase


def test_trace_envelope_fig6_smoke(benchmark):
    def run_both():
        return [
            (name, *_run_and_reprice(make()))
            for name, make in (
                ("Ext-SCC", ExtSCCConfig.baseline),
                ("Ext-SCC-Op", ExtSCCConfig.optimized),
            )
        ]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = ["Calibrated plan re-pricing vs trace ledger (Fig 6 smoke, 20%)"]
    for name, predicted, measured in rows:
        assert set(predicted) == set(measured), (name, predicted, measured)
        total_meas = sum(measured.values())
        for top in sorted(measured):
            diff = abs(measured[top] - predicted[top])
            error = diff / measured[top]
            lines.append(
                f"{name:>11} {top:>12}: predicted {predicted[top]:,}, "
                f"measured {measured[top]:,} ({error:.1%} off)"
            )
            assert error <= 0.20 or diff <= 0.15 * total_meas, (
                name, top, predicted[top], measured[top]
            )
        total_pred = sum(predicted.values())
        total_error = abs(total_meas - total_pred) / total_meas
        lines.append(
            f"{name:>11} {'(total)':>12}: predicted {total_pred:,}, "
            f"measured {total_meas:,} ({total_error:.1%} off)"
        )
        assert total_error <= 0.15, (name, total_pred, total_meas)
    text = "\n".join(lines) + "\n"
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "trace_envelope.txt").write_text(text)
