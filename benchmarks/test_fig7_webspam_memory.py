"""Figure 7 — WEBSPAM: time (a) and #I/Os (b) while varying memory.

Paper: M swept 400M..1G against WEBSPAM-UK2007's semi-external threshold
of ~847M; both Ext variants get cheaper as M grows, with a sharp drop once
M exceeds the threshold (no contraction iterations at all); DFS-SCC never
finishes within the cutoff.

Here: the memory ratios M / (8|V| + B) are the paper's (0.47..1.21) on the
webspam stand-in; the I/O cutoff for the baselines is set a generous 4x
above the worst Ext-SCC cost, mirroring 24h vs the ~5h worst Ext run.
"""

from conftest import assert_ext_wins_or_inf, assert_monotone, report

from repro.bench import (
    BENCH_NODES,
    BLOCK_SIZE,
    WEBSPAM_MEMORY_RATIOS,
    memory_for_ratio,
    run_algorithm,
    run_sweep,
    shape_summary,
    shuffled_edges,
    webspam_graph,
)

TITLE = "Fig 7 — WEBSPAM-like: cost vs memory size"


def _run_sweep():
    graph = webspam_graph()
    edges = shuffled_edges(graph)
    n = graph.num_nodes
    points = [
        (ratio, edges, n, memory_for_ratio(n, ratio))
        for ratio in WEBSPAM_MEMORY_RATIOS
    ]
    sweep = run_sweep(TITLE, "M/(8|V|+B)", points,
                      ["Ext-SCC", "Ext-SCC-Op"], block_size=BLOCK_SIZE)
    worst_ext = max(r.io_total for r in sweep.runs)
    budget = max(4 * worst_ext, 100_000)
    for ratio, edges_, n_, memory in points:
        for name in ("DFS-SCC", "EM-SCC"):
            sweep.runs.append(
                run_algorithm(name, edges_, n_, memory, block_size=BLOCK_SIZE,
                              io_budget=budget, x=ratio)
            )
    return sweep


def test_fig7_webspam_memory(benchmark):
    sweep = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    report(sweep, "fig7_webspam_memory.txt",
           extra=shape_summary(sweep, "Ext-SCC-Op", "DFS-SCC"))

    for name in ("Ext-SCC", "Ext-SCC-Op"):
        series = sweep.series(name)
        assert all(r.ok for r in series)
        # Paper: cost falls as memory grows.
        assert_monotone([r.io_total for r in series], increasing=False)
        # Sharp drop past the semi-external threshold: zero iterations.
        assert series[-1].iterations == 0
        assert series[0].iterations >= 1
        # Ext-SCC is scan/sort only.
        assert all(r.io_random == 0 for r in series)

    # DFS-SCC / EM-SCC lose at every point (INF, NONTERM, or random-bound).
    assert_ext_wins_or_inf(sweep, "Ext-SCC-Op", "DFS-SCC")
    assert all(r.status == "NONTERM" for r in sweep.series("EM-SCC"))
