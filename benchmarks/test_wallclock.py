"""Wall-clock as a first-class metric: the Fig. 6 smoke point timed.

Two claims, kept deliberately separate:

* **Invariance** — the batch record path and the ``processes`` executor
  are *pure* wall-clock optimisations: at every codec × executor × K
  combination the smoke run's simulated ledger (every I/O counter, byte
  counter, pass counter) and its answer are exactly the scalar serial
  run's.  This is the correctness half and it is gated exactly.
* **Speed** — batch beats scalar end-to-end on the same workload.  The
  measured trajectory is committed at the repo root
  (``BENCH_wallclock.json``) so the speedup is reviewable history, not a
  claim; the in-test gate is a soft floor (``WALLCLOCK_FLOOR``) because
  absolute timings vary across machines while the committed entry records
  the real ratio.

Run labels come from ``REPRO_BENCH_LABEL`` (defaults to the current
date) so CI pushes append a dated trajectory point per commit.
"""

import datetime
import json
import os
import pathlib
import platform
import statistics

from repro.bench import (
    BLOCK_SIZE,
    memory_for_ratio,
    run_algorithm,
    shuffled_edges,
    subsample_edges,
    webspam_graph,
)
from repro.io.codecs import set_batch_enabled

WALLCLOCK_JSON = pathlib.Path(__file__).parent.parent / "BENCH_wallclock.json"
MEMORY_RATIO = 0.47  # Fig. 6 default memory
SMOKE_PCT = 20
WALLCLOCK_FLOOR = 1.25  # soft in-test floor; the committed entry records the real ratio
REPEATS = 3

MATRIX_CODECS = ("gap-varint", "varint", "fixed")
MATRIX_EXECUTORS = ("serial", "threads", "processes")
MATRIX_WORKERS = (1, 2, 4, 8)


def _smoke_point():
    graph = webspam_graph()
    edges = subsample_edges(shuffled_edges(graph), SMOKE_PCT)
    memory = memory_for_ratio(graph.num_nodes, MEMORY_RATIO)
    return edges, graph.num_nodes, memory


def _fingerprint(run):
    """Everything the simulation promises is execution-strategy-invariant.

    Deliberately excludes ``wall_seconds`` (the quantity being optimised),
    ``makespan``/``channel_io`` (properties of striping width K), and the
    per-phase wall measurements.
    """
    return {
        "status": run.status,
        "io_total": run.io_total,
        "io_random": run.io_random,
        "io_sequential": run.io_sequential,
        "merge_passes": run.merge_passes,
        "runs_formed": run.runs_formed,
        "records_written": run.records_written,
        "bytes_logical": run.bytes_logical,
        "bytes_stored": run.bytes_stored,
        "num_sccs": run.num_sccs,
        "iterations": run.iterations,
    }


def _run_smoke(edges, n, memory, *, batch, executor="serial", workers=1,
               codec=None, autotune=False, numpy=False):
    from repro import kernels
    from repro.core import ExtSCCConfig

    config = ExtSCCConfig.optimized(codec=codec) if codec else None
    previous = set_batch_enabled(batch)
    previous_numpy = kernels.set_enabled(numpy)
    try:
        return run_algorithm("Ext-SCC-Op", edges, n, memory,
                             block_size=BLOCK_SIZE, x=SMOKE_PCT,
                             config=config, workers=workers,
                             executor=executor, autotune=autotune)
    finally:
        kernels.set_enabled(previous_numpy)
        set_batch_enabled(previous)


def _median_walls(edges, n, memory, variants):
    """Median wall per variant, measured in *interleaved* rounds.

    Shared-host noise arrives in bursts; running every variant once per
    round (instead of all repeats of one variant back to back) spreads a
    burst across all variants rather than inflating a single one.
    """
    walls = {label: [] for label in variants}
    sample = {}
    for _ in range(REPEATS):
        for label, kwargs in variants.items():
            run = _run_smoke(edges, n, memory, **kwargs)
            assert run.ok
            walls[label].append(run.wall_seconds)
            if label in sample:
                assert _fingerprint(run) == _fingerprint(sample[label])
            else:
                sample[label] = run
    return {
        label: (statistics.median(walls[label]), sample[label])
        for label in variants
    }


def test_wallclock_invariance_matrix(benchmark):
    """Exact ledger identity at every codec × executor × K against the
    scalar serial run — the acceptance matrix for the batch path."""
    edges, n, memory = _smoke_point()

    def run_matrix():
        mismatches = []
        for codec in MATRIX_CODECS:
            reference = _fingerprint(
                _run_smoke(edges, n, memory, batch=False, codec=codec)
            )
            for executor in MATRIX_EXECUTORS:
                for workers in MATRIX_WORKERS:
                    run = _run_smoke(edges, n, memory, batch=True,
                                     executor=executor, workers=workers,
                                     codec=codec)
                    if _fingerprint(run) != reference:
                        mismatches.append(
                            (codec, executor, workers,
                             _fingerprint(run), reference)
                        )
        return mismatches

    mismatches = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    assert not mismatches, mismatches[0]


def test_wallclock_speedup_committed(benchmark):
    """Time the smoke point scalar vs batch, commit the trajectory, and
    gate a soft local floor (the committed entry carries the real ratio)."""
    edges, n, memory = _smoke_point()

    def measure():
        return _median_walls(edges, n, memory, {
            "scalar-serial": dict(batch=False),
            "batch-serial": dict(batch=True),
            "batch-numpy-serial": dict(batch=True, numpy=True),
            "batch-threads-k4": dict(batch=True, executor="threads", workers=4),
            "batch-processes-k1": dict(batch=True, executor="processes", workers=1),
            "batch-processes-k4": dict(batch=True, executor="processes", workers=4),
            "autotuned": dict(batch=True, autotune=True),
        })

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    scalar_wall, scalar_run = results["scalar-serial"]
    for label, (wall, run) in results.items():
        if label == "autotuned":
            # The autotuner may pick any knob combination; the answer must
            # match, the ledger is the chosen config's own.
            assert run.num_sccs == scalar_run.num_sccs
            continue
        assert _fingerprint(run) == _fingerprint(scalar_run), label

    static_labels = [label for label in results
                     if label not in ("scalar-serial", "autotuned")]
    best_label, (best_wall, _) = min(
        ((label, results[label]) for label in static_labels),
        key=lambda item: item[1][0],
    )
    speedup = scalar_wall / best_wall

    # The optimizer rides along: autotuned wall vs the best static
    # variant measured in the same interleaved rounds.
    autotuned_wall, autotuned_run = results["autotuned"]
    best_static_wall = min(results[label][0] for label in static_labels)

    label = os.environ.get(
        "REPRO_BENCH_LABEL", datetime.date.today().isoformat()
    )
    entry = {
        "label": label,
        "workload": f"fig6-smoke-{SMOKE_PCT}pct",
        "block_size": BLOCK_SIZE,
        "host": platform.node(),
        "io_total": scalar_run.io_total,
        "num_sccs": scalar_run.num_sccs,
        "wall_seconds": {
            name: round(wall, 4) for name, (wall, _) in results.items()
        },
        "best_variant": best_label,
        "speedup_vs_scalar": round(speedup, 3),
        "autotune": {
            "codec": autotuned_run.autotune.get("codec"),
            "workers": autotuned_run.autotune.get("workers"),
            "executor": autotuned_run.autotune.get("executor"),
            "solver": autotuned_run.autotune.get("solver"),
            "wall_vs_best_static": round(autotuned_wall / best_static_wall, 3),
            "io_total": autotuned_run.io_total,
        },
    }
    trajectory = []
    if WALLCLOCK_JSON.exists():
        trajectory = json.loads(WALLCLOCK_JSON.read_text())["entries"]
    # Against a committed pre-batch baseline measured on the *same* host
    # (role: baseline), record the cross-version speedup too — that is the
    # number the batch path is accountable for.  Entries from other hosts
    # are history, not a comparison target.
    for baseline in trajectory:
        if (baseline.get("role") == "baseline"
                and baseline.get("host") == entry["host"]
                and baseline.get("workload") == entry["workload"]):
            base_wall = baseline["wall_seconds"]["scalar-serial"]
            entry["speedup_vs_baseline"] = round(base_wall / best_wall, 3)
            procs = [w for name, w in entry["wall_seconds"].items()
                     if name.startswith("batch-processes")]
            if procs:
                entry["speedup_vs_baseline_processes"] = round(
                    base_wall / min(procs), 3
                )
    trajectory = [e for e in trajectory if e["label"] != label] + [entry]
    WALLCLOCK_JSON.write_text(
        json.dumps({"workload": f"fig6-smoke-{SMOKE_PCT}pct",
                    "entries": trajectory}, indent=2) + "\n"
    )

    lines = [f"Fig. 6 smoke wall-clock (median of {REPEATS}):"]
    for name, (wall, _) in results.items():
        lines.append(f"  {name:<20} {wall:8.3f}s"
                     f"  ({scalar_wall / wall:5.2f}x vs scalar)")
    lines.append(f"  best: {best_label} — {speedup:.2f}x")
    print()
    print("\n".join(lines))

    assert speedup >= WALLCLOCK_FLOOR, (
        f"batch path only {speedup:.2f}x scalar (floor {WALLCLOCK_FLOOR}x); "
        f"see BENCH_wallclock.json"
    )
