"""Figure 9(c)/(d) — Large-SCC: cost vs average degree D.

Paper: D swept 2..6; cost rises with D (more edges: more iterations and
bigger sorts), and the Ext-SCC-Op / Ext-SCC gap widens with D because the
edge-reduction techniques have more to prune.

Here: same sweep at a node count where the D=6 deep-contraction point
stays tractable in pure Python.
"""

from conftest import assert_ext_wins_or_inf, assert_monotone, report

from repro.bench import (
    BLOCK_SIZE,
    family_graph,
    memory_for_ratio,
    run_algorithm,
    run_sweep,
    shuffled_edges,
)

DEGREES = (2, 3, 4, 5, 6)
NUM_NODES = 2000


def _run_sweep():
    memory = memory_for_ratio(NUM_NODES, 0.5)
    points = []
    for degree in DEGREES:
        graph = family_graph("large-scc", num_nodes=NUM_NODES,
                             avg_degree=degree, seed=2)
        points.append((degree, shuffled_edges(graph), NUM_NODES, memory))
    sweep = run_sweep(
        "Fig 9(c)/(d) — Large-SCC: cost vs average degree", "D", points,
        ["Ext-SCC", "Ext-SCC-Op"], block_size=BLOCK_SIZE,
    )
    budget = max(4 * max(r.io_total for r in sweep.runs), 100_000)
    for degree, edges, n, memory_ in points:
        for name in ("DFS-SCC", "EM-SCC"):
            sweep.runs.append(
                run_algorithm(name, edges, n, memory_, block_size=BLOCK_SIZE,
                              io_budget=budget, x=degree)
            )
    return sweep


def test_fig9_vary_degree(benchmark):
    sweep = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    report(sweep, "fig9_vary_degree.txt")

    for name in ("Ext-SCC", "Ext-SCC-Op"):
        series = sweep.series(name)
        assert all(r.ok for r in series)
        assert_monotone([r.io_total for r in series], increasing=True,
                        slack=1.25)
        assert all(r.io_random == 0 for r in series)

    # Paper: "when D is larger, the gap between Ext-SCC-Op and Ext-SCC is
    # larger" — compare the relative gap at both ends.
    def gap(degree):
        base = sweep.result("Ext-SCC", degree).io_total
        opt = sweep.result("Ext-SCC-Op", degree).io_total
        return base / max(1, opt)

    assert gap(DEGREES[-1]) >= gap(DEGREES[0]) * 0.9

    assert_ext_wins_or_inf(sweep, "Ext-SCC-Op", "DFS-SCC")
    assert all(not r.ok for r in sweep.series("EM-SCC"))
