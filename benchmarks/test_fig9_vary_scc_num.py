"""Figure 9(g)/(h) — Large-SCC: cost vs the number of SCCs.

Paper: the SCC count swept 30..70 at fixed |V|, |E|; like the SCC-size
sweep, the costs of both Ext variants barely move — Exp-5's point that
only |V| and |E| drive the algorithm.
"""

from conftest import assert_ext_wins_or_inf, report

from repro.bench import (
    BENCH_NODES,
    BLOCK_SIZE,
    family_graph,
    memory_for_ratio,
    run_algorithm,
    run_sweep,
    shuffled_edges,
)

SCC_COUNTS = (30, 40, 50, 60, 70)
SCC_SIZE = max(4, BENCH_NODES // 200)  # fixed size; 70 SCCs stay < |V|/2


def _run_sweep():
    memory = memory_for_ratio(BENCH_NODES, 0.5)
    points = []
    for count in SCC_COUNTS:
        graph = family_graph("large-scc", scc_size=SCC_SIZE,
                             scc_count=count, seed=4)
        points.append((count, shuffled_edges(graph), BENCH_NODES, memory))
    sweep = run_sweep(
        "Fig 9(g)/(h) — Large-SCC: cost vs number of SCCs", "#sccs", points,
        ["Ext-SCC", "Ext-SCC-Op"], block_size=BLOCK_SIZE,
    )
    budget = max(4 * max(r.io_total for r in sweep.runs), 100_000)
    for count, edges, n, memory_ in points:
        sweep.runs.append(
            run_algorithm("DFS-SCC", edges, n, memory_, block_size=BLOCK_SIZE,
                          io_budget=budget, x=count)
        )
    return sweep


def test_fig9_vary_scc_num(benchmark):
    sweep = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    report(sweep, "fig9_vary_scc_num.txt")

    for name in ("Ext-SCC", "Ext-SCC-Op"):
        series = sweep.series(name)
        assert all(r.ok for r in series)
        costs = [r.io_total for r in series]
        # Paper: insensitive to the SCC count at fixed |V|, |E|.
        assert max(costs) <= 2.0 * min(costs), (name, costs)
        assert all(r.io_random == 0 for r in series)

    assert_ext_wins_or_inf(sweep, "Ext-SCC-Op", "DFS-SCC")
