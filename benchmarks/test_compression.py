"""Edge-file compression: scan-I/O savings on the workload families.

Ext-SCC's cost is sorts and scans of the edge file; storing the sorted
``E_in``/``E_out`` copies gap-encoded (WebGraph-style) shrinks every scan
proportionally to the compression ratio.  This bench measures the ratio
and the per-scan block savings on the Table I families and the webspam
stand-in — quantifying the headroom such a storage format would buy the
pipeline.
"""

from conftest import RESULTS_DIR

from repro.bench import BLOCK_SIZE, family_graph, shuffled_edges, webspam_graph
from repro.graph.compressed import CompressedEdgeFile
from repro.graph.edge_file import EdgeFile
from repro.io import BlockDevice, MemoryBudget

WORKLOADS = {
    "massive-scc": lambda: family_graph("massive-scc", num_nodes=4000, seed=9),
    "large-scc": lambda: family_graph("large-scc", num_nodes=4000, seed=9),
    "small-scc": lambda: family_graph("small-scc", num_nodes=4000, seed=9),
    "webspam": lambda: webspam_graph(num_nodes=4000),
    "rmat": None,  # filled below to keep the lambda table tidy
}


def _rmat():
    from repro.graph.generators import rmat_graph

    return rmat_graph(12, edge_factor=6.0, seed=9)


WORKLOADS["rmat"] = _rmat


def _run_all():
    rows = []
    for name, build in WORKLOADS.items():
        graph = build()
        edges = shuffled_edges(graph)
        device = BlockDevice(block_size=BLOCK_SIZE)
        memory = MemoryBudget(64 * 1024)
        plain = EdgeFile.from_edges(device, "plain", sorted(edges))
        compressed = CompressedEdgeFile.from_sorted_edges(
            device, "comp", sorted(edges)
        )
        before = device.stats.snapshot()
        sum(1 for _ in plain.scan())
        plain_scan = (device.stats.snapshot() - before).total
        before = device.stats.snapshot()
        sum(1 for _ in compressed.scan())
        comp_scan = (device.stats.snapshot() - before).total
        rows.append(
            (name, len(edges), compressed.compression_ratio, plain_scan, comp_scan)
        )
    return rows


def test_compression(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        "Gap-encoded edge storage — scan savings per workload",
        f"{'workload':>12} {'edges':>8} {'ratio':>6} {'scan(plain)':>12} {'scan(comp)':>11}",
    ]
    for name, num_edges, ratio, plain_scan, comp_scan in rows:
        lines.append(
            f"{name:>12} {num_edges:>8,} {ratio:>6.2f} {plain_scan:>12,} {comp_scan:>11,}"
        )
        # The encoded form must actually shrink scans on every family.
        assert ratio > 1.5, name
        assert comp_scan < plain_scan, name
    text = "\n".join(lines) + "\n"
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "compression.txt").write_text(text)
