"""Figure 6 — WEBSPAM: time (a) and #I/Os (b) while varying graph size.

Paper: the edge file of WEBSPAM-UK2007 is subsampled 20%..100% at the
default memory; DFS-SCC cannot finish even at 20%; both Ext variants grow
with |E| (more contraction iterations and bigger sorts), with Ext-SCC-Op
ahead of Ext-SCC.

Here: same percentages on the webspam stand-in at the paper's default
memory ratio (400M / 847M ≈ 0.47 of the semi-external threshold).
"""

from conftest import RESULTS_DIR, assert_ext_wins_or_inf, assert_monotone, report

from repro.bench import (
    BLOCK_SIZE,
    memory_for_ratio,
    run_algorithm,
    run_sweep,
    shape_summary,
    shuffled_edges,
    subsample_edges,
    webspam_graph,
)
from repro.bench.harness import Sweep
from repro.bench.regression import compare_files, render
from repro.core import ExtSCCConfig

TITLE = "Fig 6 — WEBSPAM-like: cost vs graph size (% of edges)"
PERCENTAGES = (20, 40, 60, 80, 100)
MEMORY_RATIO = 0.47  # the paper's default 400M vs the 847.4M threshold
SMOKE_BASELINE = RESULTS_DIR / "fig6_smoke.baseline.json"
SMOKE_FIXED_BASELINE = RESULTS_DIR / "fig6_smoke_fixed.baseline.json"

VARIANTS = (
    ("Ext-SCC", ExtSCCConfig.baseline),
    ("Ext-SCC-Op", ExtSCCConfig.optimized),
)


def _run_sweep():
    graph = webspam_graph()
    edges = shuffled_edges(graph)
    n = graph.num_nodes
    memory = memory_for_ratio(n, MEMORY_RATIO)
    points = [
        (pct, subsample_edges(edges, pct), n, memory) for pct in PERCENTAGES
    ]
    sweep = run_sweep(TITLE, "size%", points, ["Ext-SCC", "Ext-SCC-Op"],
                      block_size=BLOCK_SIZE)
    budget = max(4 * max(r.io_total for r in sweep.runs), 100_000)
    for pct, sub, n_, memory_ in points:
        for name in ("DFS-SCC", "EM-SCC"):
            sweep.runs.append(
                run_algorithm(name, sub, n_, memory_, block_size=BLOCK_SIZE,
                              io_budget=budget, x=pct)
            )
    return sweep


def test_fig6_webspam_size(benchmark):
    sweep = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    report(sweep, "fig6_webspam_size.txt",
           extra=shape_summary(sweep, "Ext-SCC-Op", "DFS-SCC"))

    for name in ("Ext-SCC", "Ext-SCC-Op"):
        series = sweep.series(name)
        assert all(r.ok for r in series)
        # Paper: cost grows with |E| (more iterations, bigger sorts).
        assert_monotone([r.io_total for r in series], increasing=True)
        assert all(r.io_random == 0 for r in series)

    # Ext-SCC-Op outperforms Ext-SCC at the full graph (paper: all cases).
    assert (
        sweep.result("Ext-SCC-Op", 100).io_total
        <= sweep.result("Ext-SCC", 100).io_total
    )
    assert_ext_wins_or_inf(sweep, "Ext-SCC-Op", "DFS-SCC")
    assert all(not r.ok for r in sweep.series("EM-SCC"))


def _run_smallest(codec=None):
    """Only the 20% point, Ext variants only — the CI smoke workload.

    ``codec`` overrides the pipeline codec (``None`` keeps the default,
    gap-varint; ``"fixed"`` is the uncompressed ablation CI also gates).
    """
    graph = webspam_graph()
    edges = shuffled_edges(graph)
    n = graph.num_nodes
    memory = memory_for_ratio(n, MEMORY_RATIO)
    sub = subsample_edges(edges, PERCENTAGES[0])
    suffix = f", codec={codec}" if codec else ""
    sweep = Sweep(title=f"{TITLE} [smoke: {PERCENTAGES[0]}%{suffix}]",
                  x_label="size%")
    for name, make in VARIANTS:
        config = make(codec=codec) if codec is not None else None
        sweep.runs.append(
            run_algorithm(name, sub, n, memory, block_size=BLOCK_SIZE,
                          x=PERCENTAGES[0], config=config)
        )
    return sweep


def _check_smoke_baseline(sweep, baseline_path, candidate_name):
    for run in sweep.runs:
        assert run.ok
        assert run.io_random == 0
    assert (
        sweep.result("Ext-SCC-Op", 20).io_total
        <= sweep.result("Ext-SCC", 20).io_total
    )

    if baseline_path.exists():
        comparison = compare_files(
            str(baseline_path), str(RESULTS_DIR / candidate_name),
            tolerance=0.05,
        )
        assert comparison.ok, render(comparison)
        import json

        baseline = json.loads(baseline_path.read_text())
        expected_sccs = {
            (r["algorithm"], r["x"]): r["num_sccs"] for r in baseline["runs"]
        }
        for run in sweep.runs:
            assert run.num_sccs == expected_sccs[(run.algorithm, run.x)]


def test_fig6_smallest_smoke(benchmark):
    """The smallest Fig. 6 point, gated against the checked-in baseline:
    >5% Ext-SCC I/O growth (or any status/SCC-count change) fails CI."""
    sweep = benchmark.pedantic(_run_smallest, rounds=1, iterations=1)
    report(sweep, "fig6_smoke.txt")
    _check_smoke_baseline(sweep, SMOKE_BASELINE, "fig6_smoke.json")


def test_fig6_smallest_smoke_fixed_codec(benchmark):
    """The same smoke point under ``codec="fixed"`` — the uncompressed
    ablation, gated against its own baseline so codec work cannot silently
    regress the fixed-width pipeline either."""
    sweep = benchmark.pedantic(
        lambda: _run_smallest(codec="fixed"), rounds=1, iterations=1
    )
    report(sweep, "fig6_smoke_fixed.txt")
    _check_smoke_baseline(sweep, SMOKE_FIXED_BASELINE, "fig6_smoke_fixed.json")

    # The default (gap-varint) smoke baseline must beat this one: the
    # compressed pipeline's reason to exist, stated as a gate.
    if SMOKE_BASELINE.exists():
        import json

        compressed = json.loads(SMOKE_BASELINE.read_text())
        comp_io = {
            (r["algorithm"], r["x"]): r["io_total"] for r in compressed["runs"]
        }
        for run in sweep.runs:
            assert comp_io[(run.algorithm, run.x)] < run.io_total


def test_fig6_codec_delta(benchmark):
    """The tentpole's acceptance gate: at every Fig 6 size point, the
    gap-varint pipeline performs >=20% fewer block I/Os than the fixed
    ablation while finding identical SCCs.  The measured deltas are
    recorded next to the fusion deltas of the previous PR."""
    graph = webspam_graph()
    edges = shuffled_edges(graph)
    n = graph.num_nodes
    memory = memory_for_ratio(n, MEMORY_RATIO)
    points = [(pct, subsample_edges(edges, pct)) for pct in PERCENTAGES]

    def run_codec(codec):
        sweep = Sweep(title=f"{TITLE} [codec={codec}]", x_label="size%")
        for pct, sub in points:
            for name, make in VARIANTS:
                sweep.runs.append(
                    run_algorithm(name, sub, n, memory,
                                  block_size=BLOCK_SIZE, x=pct,
                                  config=make(codec=codec))
                )
        return sweep

    fixed = benchmark.pedantic(
        lambda: run_codec("fixed"), rounds=1, iterations=1
    )
    comp = run_codec("gap-varint")

    lines = [
        "Codec delta: gap-varint vs fixed-width intermediates",
        "baseline  = codec='fixed' (uncompressed ablation)",
        "candidate = codec='gap-varint' (the default)",
        "",
        f"{'variant':>11} {'size%':>5} {'fixed':>10} {'gap-varint':>10} "
        f"{'saved':>6} {'ratio':>6} {'B/rec':>6}",
    ]
    for pct, _ in points:
        for name, _ in VARIANTS:
            f = fixed.result(name, pct)
            c = comp.result(name, pct)
            assert f.ok and c.ok
            assert c.num_sccs == f.num_sccs, (name, pct)
            saved = 1 - c.io_total / f.io_total
            lines.append(
                f"{name:>11} {pct:>5} {f.io_total:>10,} {c.io_total:>10,} "
                f"{saved:>6.1%} {c.compression_ratio:>6.2f} "
                f"{c.bytes_per_record:>6.2f}"
            )
            # The acceptance bar: >=20% fewer I/Os at every size point.
            assert saved >= 0.20, (name, pct, saved)
    text = "\n".join(lines) + "\n"
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fig6_webspam_size.codec_delta.txt").write_text(text)


def test_fig6_replacement_selection_lowers_merge_passes(benchmark, monkeypatch):
    """On the largest workload, replacement-selection run formation performs
    strictly fewer merge passes than classic fill-sort-write formation —
    the run-length doubling (#runs ~ m/2M) translating into saved passes."""
    import repro.io.sort as sort_mod

    graph = webspam_graph()
    edges = subsample_edges(shuffled_edges(graph), 100)
    n = graph.num_nodes
    memory = memory_for_ratio(n, MEMORY_RATIO)

    def passes_with(strategy):
        monkeypatch.setattr(sort_mod, "DEFAULT_RUN_FORMATION", strategy)
        run = run_algorithm("Ext-SCC", edges, n, memory, block_size=BLOCK_SIZE,
                            x=100)
        assert run.ok
        return run

    classic = benchmark.pedantic(
        lambda: passes_with("classic"), rounds=1, iterations=1
    )
    rs = passes_with("replacement-selection")
    assert rs.num_sccs == classic.num_sccs
    assert rs.merge_passes < classic.merge_passes, (
        rs.merge_passes, classic.merge_passes
    )
    assert rs.runs_formed < classic.runs_formed
    assert rs.io_total <= classic.io_total
