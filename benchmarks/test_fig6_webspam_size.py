"""Figure 6 — WEBSPAM: time (a) and #I/Os (b) while varying graph size.

Paper: the edge file of WEBSPAM-UK2007 is subsampled 20%..100% at the
default memory; DFS-SCC cannot finish even at 20%; both Ext variants grow
with |E| (more contraction iterations and bigger sorts), with Ext-SCC-Op
ahead of Ext-SCC.

Here: same percentages on the webspam stand-in at the paper's default
memory ratio (400M / 847M ≈ 0.47 of the semi-external threshold).
"""

from conftest import assert_ext_wins_or_inf, assert_monotone, report

from repro.bench import (
    BLOCK_SIZE,
    memory_for_ratio,
    run_algorithm,
    run_sweep,
    shape_summary,
    shuffled_edges,
    subsample_edges,
    webspam_graph,
)

TITLE = "Fig 6 — WEBSPAM-like: cost vs graph size (% of edges)"
PERCENTAGES = (20, 40, 60, 80, 100)
MEMORY_RATIO = 0.47  # the paper's default 400M vs the 847.4M threshold


def _run_sweep():
    graph = webspam_graph()
    edges = shuffled_edges(graph)
    n = graph.num_nodes
    memory = memory_for_ratio(n, MEMORY_RATIO)
    points = [
        (pct, subsample_edges(edges, pct), n, memory) for pct in PERCENTAGES
    ]
    sweep = run_sweep(TITLE, "size%", points, ["Ext-SCC", "Ext-SCC-Op"],
                      block_size=BLOCK_SIZE)
    budget = max(4 * max(r.io_total for r in sweep.runs), 100_000)
    for pct, sub, n_, memory_ in points:
        for name in ("DFS-SCC", "EM-SCC"):
            sweep.runs.append(
                run_algorithm(name, sub, n_, memory_, block_size=BLOCK_SIZE,
                              io_budget=budget, x=pct)
            )
    return sweep


def test_fig6_webspam_size(benchmark):
    sweep = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    report(sweep, "fig6_webspam_size.txt",
           extra=shape_summary(sweep, "Ext-SCC-Op", "DFS-SCC"))

    for name in ("Ext-SCC", "Ext-SCC-Op"):
        series = sweep.series(name)
        assert all(r.ok for r in series)
        # Paper: cost grows with |E| (more iterations, bigger sorts).
        assert_monotone([r.io_total for r in series], increasing=True)
        assert all(r.io_random == 0 for r in series)

    # Ext-SCC-Op outperforms Ext-SCC at the full graph (paper: all cases).
    assert (
        sweep.result("Ext-SCC-Op", 100).io_total
        <= sweep.result("Ext-SCC", 100).io_total
    )
    assert_ext_wins_or_inf(sweep, "Ext-SCC-Op", "DFS-SCC")
    assert all(not r.ok for r in sweep.series("EM-SCC"))
