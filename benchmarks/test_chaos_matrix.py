"""Chaos matrix — fault type × pipeline phase × executor on the Fig. 6
smoke point, with parity striping (K=2) and the default retry policy.

Every cell injects exactly one scheduled fault into a full Ext-SCC-Op run
and gates on the fault-tolerance contract:

* **Label identity** — the faulted run's SCC labels are byte-identical to
  the fault-free run's.
* **Ledger isolation** — every algorithm phase charges exactly the I/Os
  of the fault-free run; the ``retry`` / ``repair`` fault labels are the
  entire total-ledger delta.
* **Zero-cost-when-armed** — with the policy attached and parity on but
  no fault firing, the run charges 0 extra block I/Os and reproduces the
  unarmed ledger exactly.
"""

from dataclasses import replace

from conftest import RESULTS_DIR

from repro.bench import (
    BLOCK_SIZE,
    memory_for_ratio,
    shuffled_edges,
    subsample_edges,
    webspam_graph,
)
from repro.core import ExtSCC, ExtSCCConfig
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io.memory import MemoryBudget
from repro.io.parallel import StripedDevice
from repro.io.stats import FAULT_PHASES, IOSnapshot
from repro.recovery import FaultPolicy, FaultSchedule

MEMORY_RATIO = 0.47  # the paper's default memory point (Fig. 6)
SIZE_PERCENT = 20    # the smoke subsample every CI gate uses
CHANNELS = 2

FAULT_KINDS = (
    "transient-read",
    "transient-write",
    "corrupt",
    "channel-outage",
    "worker-die",
)
PHASES = ("contract-1", "semi-scc", "expand-1")
EXECUTORS = ("serial", "threads")

POLICY = FaultPolicy(max_retries=6, seed=20240808)


def _workload():
    graph = webspam_graph()
    edges = subsample_edges(shuffled_edges(graph), SIZE_PERCENT)
    return edges, graph.num_nodes, memory_for_ratio(graph.num_nodes, MEMORY_RATIO)


def _run(edges, num_nodes, memory_bytes, executor, schedule=None, policy=None):
    device = StripedDevice(block_size=BLOCK_SIZE, channels=CHANNELS, parity=True)
    if policy is not None:
        device.attach_policy(policy)
    if schedule is not None:
        schedule.attach(device)
    memory = MemoryBudget(memory_bytes)
    edge_file = EdgeFile.from_edges(device, "edges", edges)
    node_file = NodeFile.from_ids(device, "nodes", range(num_nodes), memory,
                                  presorted=True)
    config = replace(ExtSCCConfig.optimized(), workers=CHANNELS,
                     executor=executor)
    out = ExtSCC(config).run(device, edge_file, memory, nodes=node_file)
    return out, device


def _schedule(kind, phase):
    if kind == "worker-die":
        return FaultSchedule.single(kind, in_phase=phase)
    if kind in ("transient-read", "transient-write"):
        return FaultSchedule.single(kind, in_phase=phase, failures=2)
    return FaultSchedule.single(kind, in_phase=phase)


def _phase_ledgers_match(clean_dev, faulty_dev):
    empty = IOSnapshot()
    labels = set(clean_dev.stats.by_phase) | set(faulty_dev.stats.by_phase)
    for label in labels - set(FAULT_PHASES):
        if clean_dev.stats.by_phase.get(label, empty) != \
                faulty_dev.stats.by_phase.get(label, empty):
            return False, label
    return True, None


def _measure():
    edges, num_nodes, memory_bytes = _workload()
    rows = []
    for executor in EXECUTORS:
        plain_out, plain_dev = _run(edges, num_nodes, memory_bytes, executor)
        armed_out, armed_dev = _run(edges, num_nodes, memory_bytes, executor,
                                    policy=POLICY)

        # Zero-cost-when-armed: the policy alone changes nothing.
        assert armed_out.result.labels == plain_out.result.labels
        assert armed_dev.stats.snapshot() == plain_dev.stats.snapshot(), (
            f"policy-armed {executor} run charged extra I/Os"
        )
        assert armed_dev.stats.by_phase == plain_dev.stats.by_phase
        assert armed_dev.stats.fault_total() == 0
        rows.append({
            "executor": executor, "fault": "(none)", "phase": "-",
            "fired": False, "extra_io": 0, "retry_io": 0, "repair_io": 0,
            "health": armed_dev.stats.health.snapshot(),
        })

        for kind in FAULT_KINDS:
            for phase in PHASES:
                schedule = _schedule(kind, phase)
                out, device = _run(edges, num_nodes, memory_bytes, executor,
                                   schedule=schedule, policy=POLICY)
                cell = f"{kind}@{phase}[{executor}]"

                # Gate 1: label identity.
                assert out.result.labels == plain_out.result.labels, cell

                # Gate 2: every algorithm phase charged identically; the
                # fault labels are the entire delta.
                match, bad = _phase_ledgers_match(plain_dev, device)
                assert match, f"{cell}: phase {bad!r} ledger diverged"
                extra = device.stats.total - plain_dev.stats.total
                assert extra == device.stats.fault_total(), cell
                if not schedule.fired:
                    assert extra == 0, cell

                # Worker faults are ledger-neutral by design: the replay
                # charges exactly what the first dispatch would have.
                if kind == "worker-die" and schedule.fired:
                    assert extra == 0, cell
                    assert device.stats.health.redispatches >= 1, cell

                rows.append({
                    "executor": executor, "fault": kind, "phase": phase,
                    "fired": bool(schedule.fired), "extra_io": extra,
                    "retry_io": device.stats.phase_total("retry"),
                    "repair_io": device.stats.phase_total("repair"),
                    "health": device.stats.health.snapshot(),
                })

    fired = sum(1 for row in rows if row["fired"])
    # The matrix must actually exercise the machinery, not pass vacuously.
    assert fired >= len(EXECUTORS) * len(PHASES) * 3, (
        f"only {fired} matrix cells fired a fault"
    )
    return rows


def _render(rows):
    header = (
        f"{'executor':<9} {'fault':<17} {'phase':<11} {'fired':<6} "
        f"{'extra':>6} {'retry':>6} {'repair':>7}  health"
    )
    lines = ["chaos matrix — single injected fault per full run", header,
             "-" * len(header)]
    for row in rows:
        h = row["health"]
        summary = (
            f"retries={h['retries']} repairs={h['repairs']} "
            f"redisp={h['redispatches']} backoff={h['backoff_seconds']:.4f}s"
        )
        lines.append(
            f"{row['executor']:<9} {row['fault']:<17} {row['phase']:<11} "
            f"{str(row['fired']):<6} {row['extra_io']:>6} {row['retry_io']:>6} "
            f"{row['repair_io']:>7}  {summary}"
        )
    return "\n".join(lines) + "\n"


def test_chaos_matrix(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = _render(rows)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "chaos_matrix.txt").write_text(text)

    import json

    (RESULTS_DIR / "chaos_matrix.json").write_text(json.dumps(rows, indent=1))

    # Representative shapes: transient faults show retry traffic,
    # corruption shows repair traffic, worker faults stay ledger-neutral.
    by_kind = {}
    for row in rows:
        if row["fired"]:
            by_kind.setdefault(row["fault"], []).append(row)
    assert any(r["retry_io"] > 0 for r in by_kind.get("transient-read", []))
    assert any(r["repair_io"] > 0 for r in by_kind.get("corrupt", []))
    assert all(r["extra_io"] == 0 for r in by_kind.get("worker-die", []))
