"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark runs its sweep exactly once inside ``benchmark.pedantic``
(so ``pytest benchmarks/ --benchmark-only`` executes and times it), prints
the paper-style tables, and saves them under ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional

from repro.bench import Sweep, ascii_chart, format_sweep, shape_summary, sweep_to_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(sweep: Sweep, filename: str, metrics: Optional[List[str]] = None,
           extra: str = "") -> str:
    """Format, print, and persist a sweep (text tables + chart + JSON)."""
    parts = [format_sweep(sweep, m) for m in (metrics or ["io", "time", "random"])]
    parts.append(ascii_chart(sweep, "io"))
    if extra:
        parts.append(extra)
    text = "\n\n".join(parts) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(text)
    json_name = filename.rsplit(".", 1)[0] + ".json"
    (RESULTS_DIR / json_name).write_text(sweep_to_json(sweep))
    print()
    print(text)
    return text


def assert_ext_wins_or_inf(sweep: Sweep, better: str, worse: str) -> None:
    """The paper's headline shape: at every point, ``worse`` either blew
    the budget / failed to terminate, or performed more random I/Os."""
    for x in sweep.x_values:
        b = sweep.result(better, x)
        w = sweep.result(worse, x)
        if not b.ok:
            continue  # the better algorithm hit the cutoff too; no claim
        assert (not w.ok) or (w.io_random > b.io_random), (
            f"{worse} at {x}: io={w.io_total} rand={w.io_random} vs "
            f"{better} io={b.io_total} rand={b.io_random}"
        )


def assert_monotone(values, increasing: bool, slack: float = 1.10) -> None:
    """Assert a series trends in one direction, allowing ``slack`` noise
    on individual steps but requiring the endpoints to conform."""
    if len(values) < 2:
        return
    first, last = values[0], values[-1]
    if increasing:
        assert last > first, values
        for a, b in zip(values, values[1:]):
            assert b >= a / slack, values
    else:
        assert last < first, values
        for a, b in zip(values, values[1:]):
            assert b <= a * slack, values
