"""Ablation of the Section VII reductions (beyond the paper's two presets).

The paper only evaluates all-off (Ext-SCC) and all-on (Ext-SCC-Op); this
bench switches each reduction on individually so DESIGN.md's "which lever
does the work" question gets a measured answer per workload.
"""

from conftest import report

from repro.bench import (
    BLOCK_SIZE,
    Sweep,
    family_graph,
    memory_for_ratio,
    run_algorithm,
    shuffled_edges,
    webspam_graph,
)
from repro.core import ExtSCCConfig

VARIANTS = {
    "base": ExtSCCConfig.baseline(),
    "+type1": ExtSCCConfig(trim_type1=True),
    "+type2": ExtSCCConfig(type2_reduction=True),
    "+dedupe": ExtSCCConfig(dedupe_parallel_edges=True),
    "+selfloop": ExtSCCConfig(remove_self_loops=True),
    "+product": ExtSCCConfig(product_operator=True),
    "all(Op)": ExtSCCConfig.optimized(),
    # Extensions beyond the paper's Section VII:
    "Op+trim4": ExtSCCConfig.optimized(trim_rounds=4),
    # Compression is on by default; the ablation switches it *off* to show
    # what the gap-varint intermediates buy on top of the paper's levers.
    "Op-zip": ExtSCCConfig.optimized(codec="fixed"),
}

WORKLOADS = {
    "large-scc": lambda: family_graph("large-scc", num_nodes=2500, seed=5),
    "webspam": lambda: webspam_graph(num_nodes=2500),
}


def _run_ablation():
    sweeps = {}
    for workload_name, build in WORKLOADS.items():
        graph = build()
        edges = shuffled_edges(graph)
        n = graph.num_nodes
        memory = memory_for_ratio(n, 0.5)
        sweep = Sweep(title=f"Ablation — {workload_name} (M ratio 0.5)",
                      x_label="variant")
        for variant, config in VARIANTS.items():
            sweep.runs.append(
                run_algorithm(variant, edges, n, memory,
                              block_size=BLOCK_SIZE, x="io/iters",
                              config=config)
            )
        sweeps[workload_name] = sweep
    return sweeps


def test_ablation_optimizations(benchmark):
    sweeps = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    for workload_name, sweep in sweeps.items():
        lines = [sweep.title, f"{'variant':>10}  {'I/Os':>10}  {'iters':>5}"]
        for run in sweep.runs:
            lines.append(
                f"{run.algorithm:>10}  {run.io_total:>10,}  {run.iterations:>5}"
            )
        text = "\n".join(lines) + "\n"
        print()
        print(text)
        from conftest import RESULTS_DIR

        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"ablation_{workload_name}.txt").write_text(text)

        by_name = {run.algorithm: run for run in sweep.runs}
        assert all(run.ok for run in sweep.runs)
        # The full stack beats the baseline.
        assert by_name["all(Op)"].io_total <= by_name["base"].io_total
        # Every single-lever variant still terminates in no more
        # iterations than the baseline needed (each reduction can only
        # shrink the per-iteration graph).
        for variant in ("+type1", "+type2", "+dedupe", "+selfloop", "+product"):
            assert by_name[variant].iterations <= by_name["base"].iterations * 1.5
        # Turning compression off must cost I/O, never change the iterations.
        assert by_name["Op-zip"].io_total > by_name["all(Op)"].io_total
        assert by_name["Op-zip"].iterations == by_name["all(Op)"].iterations
