"""Semi-external solver comparison (the Section III landscape).

The paper motivates its Semi-SCC substrate [26] against the semi-external
DFS route [23]: the spanning-tree solver contracts partial SCCs during
sequential scans, while the DFS route pays a random read per node.  This
bench races the three scan-only solvers and the DFS-based one on the same
graphs and records total/random I/Os.
"""

from conftest import RESULTS_DIR

from repro.bench import BLOCK_SIZE, family_graph, shuffled_edges, webspam_graph
from repro.core.result import SCCResult
from repro.graph.edge_file import EdgeFile
from repro.io import BlockDevice
from repro.semi_external import (
    SEMI_SCC_SOLVERS,
    semi_kosaraju_scc,
)

WORKLOADS = {
    "large-scc": lambda: family_graph("large-scc", num_nodes=3000, seed=8),
    "webspam": lambda: webspam_graph(num_nodes=3000),
}

SOLVERS = dict(SEMI_SCC_SOLVERS, **{"dfs-kosaraju": semi_kosaraju_scc})


def _run_all():
    rows = []
    for workload_name, build in WORKLOADS.items():
        graph = build()
        edges = shuffled_edges(graph)
        reference = None
        for solver_name, solver in SOLVERS.items():
            device = BlockDevice(block_size=BLOCK_SIZE)
            edge_file = EdgeFile.from_edges(device, "E", edges)
            baseline = device.stats.snapshot()
            labels = solver(edge_file, range(graph.num_nodes))
            delta = device.stats.snapshot() - baseline
            result = SCCResult(labels)
            if reference is None:
                reference = result
            assert result == reference, (workload_name, solver_name)
            rows.append(
                (workload_name, solver_name, delta.total, delta.random,
                 result.num_sccs)
            )
    return rows


def test_semi_solvers(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        "Semi-external solvers — same graphs, same answers, different I/O",
        f"{'workload':>10} {'solver':>17} {'I/Os':>10} {'random':>8} {'sccs':>6}",
    ]
    by_key = {}
    for workload, solver, total, rand, sccs in rows:
        lines.append(f"{workload:>10} {solver:>17} {total:>10,} {rand:>8,} {sccs:>6}")
        by_key[(workload, solver)] = (total, rand)
    text = "\n".join(lines) + "\n"
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "semi_solvers.txt").write_text(text)

    for workload in WORKLOADS:
        # Scan-only solvers never seek; the DFS route always does.
        for solver in SEMI_SCC_SOLVERS:
            assert by_key[(workload, solver)][1] == 0, (workload, solver)
        assert by_key[(workload, "dfs-kosaraju")][1] > 0, workload
