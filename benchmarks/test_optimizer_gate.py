"""The optimizer gate — does ``--autotune`` actually find the fast plan?

The gate runs the Fig. 6 smoke workload at several size points, measures
every static (codec, solver) combination, then lets the autotuner pick
blind.  At every point the autotuned run's *measured* total I/Os must be
within 5% of the best static configuration, and its wall-seconds within
5% plus an absolute slack absorbing sub-second host noise.  The
calibration profile fitted from the static grid and the full comparison
table are committed under ``benchmarks/results/`` so the decision is
reviewable.

(The static grid varies codec and solver only: workers/executor do not
change the measured ledger — that is the parallel-equivalence invariant —
so the I/O-optimal static config lives in this codec x solver slice.  The
solver axis is the live ``SEMI_SCC_SOLVERS`` registry, so newly
registered solvers — e.g. the multi-source BFS solver — join the grid,
and the autotuner's 5%-of-best-static bar, automatically.)
"""

import json
import time

from conftest import RESULTS_DIR

from repro.analysis.calibration import CalibrationProfile
from repro.bench import (
    BLOCK_SIZE,
    memory_for_ratio,
    shuffled_edges,
    subsample_edges,
    webspam_graph,
)
from repro.core import ExtSCCConfig, compute_sccs
from repro.io.codecs import CODECS
from repro.plan import PlanCache
from repro.semi_external import SEMI_SCC_SOLVERS

MEMORY_RATIO = 0.47          # Fig. 6's default-memory operating point
PERCENTAGES = (20, 40, 60)   # smoke-sized slices of the size sweep
IO_TOLERANCE = 0.05
WALL_TOLERANCE = 0.05
WALL_SLACK_SECONDS = 0.25    # absolute allowance for sub-second host noise
CALIBRATION_PATH = RESULTS_DIR / "fig6_smoke.calibration.json"
TABLE_PATH = RESULTS_DIR / "optimizer_gate.txt"


def _workload():
    graph = webspam_graph()
    edges = shuffled_edges(graph)
    n = graph.num_nodes
    memory = memory_for_ratio(n, MEMORY_RATIO)
    return [(pct, subsample_edges(edges, pct), n, memory)
            for pct in PERCENTAGES]


def _run(sub, n, memory, **kwargs):
    started = time.perf_counter()
    out = compute_sccs(sub, num_nodes=n, memory_bytes=memory,
                       block_size=BLOCK_SIZE, **kwargs)
    return out, time.perf_counter() - started


def _static_grid(points, profile):
    """Measure every (codec, solver) static combination at every point and
    feed each run's payload ledger and wall time into the profile."""
    grid = {}
    for pct, sub, n, memory in points:
        for codec in sorted(CODECS):
            for solver in SEMI_SCC_SOLVERS:
                config = ExtSCCConfig.optimized(codec=codec, semi_scc=solver)
                out, wall = _run(sub, n, memory, config=config)
                profile.ingest_run(out, block_size=BLOCK_SIZE)
                grid[(pct, codec, solver)] = (out, wall)
    return grid


def test_optimizer_gate(benchmark):
    points = _workload()
    profile = CalibrationProfile()
    grid = benchmark.pedantic(
        lambda: _static_grid(points, profile), rounds=1, iterations=1
    )

    lines = [
        "Optimizer gate — autotuned vs the measured static grid",
        f"workload: Fig 6 smoke (webspam stand-in), memory ratio "
        f"{MEMORY_RATIO}, block {BLOCK_SIZE}B",
        f"static grid: {len(CODECS)} codecs x {len(SEMI_SCC_SOLVERS)} "
        f"solvers per size point",
        "",
        f"{'size%':>5} {'objective':>9} {'best static':>28} "
        f"{'metric':>9} {'autotuned':>28} {'metric':>9} {'delta':>7}",
    ]
    cache = PlanCache()
    for pct, sub, n, memory in points:
        point_keys = [k for k in grid if k[0] == pct]
        best_io_key = min(point_keys, key=lambda k: grid[k][0].io.total)
        best_io = grid[best_io_key][0].io.total
        best_wall_key = min(point_keys, key=lambda k: grid[k][1])
        best_wall = grid[best_wall_key][1]
        num_sccs = grid[best_io_key][0].result.num_sccs

        # Objective "io": the autotuned run's measured total I/Os must be
        # within 5% of the best static combination's.
        tuned_io, _ = _run(
            sub, n, memory, autotune=True, calibration=profile,
            plan_cache=cache, objective="io",
        )
        assert tuned_io.tuning is not None and not tuned_io.tuning.cache_hit
        assert tuned_io.io.total <= best_io * (1 + IO_TOLERANCE), (
            pct, tuned_io.io.total, best_io, tuned_io.tuning.chosen
        )
        assert tuned_io.result.num_sccs == num_sccs

        # Objective "wallclock": measured wall-seconds within 5% (plus an
        # absolute slack for sub-second host noise) of the fastest static.
        tuned_wc, wc_wall = _run(
            sub, n, memory, autotune=True, calibration=profile,
            plan_cache=cache, objective="wallclock",
        )
        allowed = best_wall * (1 + WALL_TOLERANCE) + WALL_SLACK_SECONDS
        assert wc_wall <= allowed, (
            pct, wc_wall, best_wall, tuned_wc.tuning.chosen
        )
        assert tuned_wc.result.num_sccs == num_sccs

        for objective, tuned, best_key, best_cell, tuned_cell, delta in (
            ("io", tuned_io, best_io_key, f"{best_io:,}",
             f"{tuned_io.io.total:,}", tuned_io.io.total / best_io - 1),
            ("wallclock", tuned_wc, best_wall_key, f"{best_wall:.3f}s",
             f"{wc_wall:.3f}s", wc_wall / best_wall - 1),
        ):
            chosen = tuned.tuning.chosen
            lines.append(
                f"{pct:>5} {objective:>9} "
                f"{best_key[1] + '/' + best_key[2]:>28} {best_cell:>9} "
                f"{chosen.codec + '/' + chosen.solver:>28} "
                f"{tuned_cell:>9} {delta:>+7.1%}"
            )

    lines += [
        "",
        f"gate: objective=io within {IO_TOLERANCE:.0%} of best static "
        f"I/Os; objective=wallclock within {WALL_TOLERANCE:.0%} "
        f"+ {WALL_SLACK_SECONDS}s of best static wall",
        f"plan cache after sweep: {cache.stats()}",
        f"calibration: {profile.runs} static runs ingested",
    ]
    text = "\n".join(lines) + "\n"
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    TABLE_PATH.write_text(text)
    profile.save(str(CALIBRATION_PATH))
    assert json.loads(CALIBRATION_PATH.read_text())["runs"] == profile.runs


def test_optimizer_gate_warm_cache_and_label_identity(benchmark):
    """Service-style repetition: the second autotuned run of the same query
    is a plan-cache hit with zero planning-phase spans, and the autotuned
    labels are byte-identical to the chosen static configuration's."""
    pct, sub, n, memory = _workload()[0]
    cache = PlanCache()

    def cold():
        return compute_sccs(sub, num_nodes=n, memory_bytes=memory,
                            block_size=BLOCK_SIZE, autotune=True,
                            plan_cache=cache)

    first = benchmark.pedantic(cold, rounds=1, iterations=1)
    second = compute_sccs(sub, num_nodes=n, memory_bytes=memory,
                          block_size=BLOCK_SIZE, autotune=True,
                          plan_cache=cache)
    assert not first.tuning.cache_hit
    assert second.tuning.cache_hit
    assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}
    assert [s for s in first.trace.spans if s.phase == "planning"]
    assert not [s for s in second.trace.spans if s.phase == "planning"]

    static = compute_sccs(sub, num_nodes=n, memory_bytes=memory,
                          block_size=BLOCK_SIZE, config=first.config)
    assert first.result.labels == static.result.labels
    assert first.io.total == static.io.total
    assert second.result.labels == static.result.labels
