"""Recovery overhead — what checkpointing costs (nothing) and what a
crash costs to recover from (bounded by the interrupted phase).

The crash matrix from the property tests, run at benchmark scale and
persisted as a paper-style table: one crash per pipeline phase, each
resumed from the journal.  Two gates ride along:

* **Zero-cost-when-on** — the checkpointed uninterrupted run charges
  exactly the I/Os of the plain run (journal commits are manifest-only).
* **Bounded repay** — no resume re-executes more I/O than the
  uninterrupted run still had ahead of it when its phase began.
"""

from conftest import RESULTS_DIR

from repro.bench import measure_recovery, render_recovery_report
from repro.graph.generators import random_digraph

NUM_NODES = 400
NUM_EDGES = 1600
MEMORY_BYTES = 2048
BLOCK_SIZE = 64


def _measure():
    graph = random_digraph(NUM_NODES, NUM_EDGES, seed=20240731)
    return measure_recovery(
        graph.edges, NUM_NODES, MEMORY_BYTES, block_size=BLOCK_SIZE
    )


def test_recovery_overhead(benchmark):
    report = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = render_recovery_report(report) + "\n"
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "recovery_overhead.txt").write_text(text)

    # The matrix covered real pipeline depth: contractions, the solve,
    # expansions, and the final scan all hosted a crash.
    phases = [trial.phase for trial in report.trials]
    assert phases[-1] == "final-scan"
    assert "semi-scc" in phases
    assert len(phases) >= 5

    # Zero-cost-when-on: checkpointing an uninterrupted run is free.
    assert report.overhead == 0, (
        f"journaling charged {report.overhead} extra I/Os"
    )
    # Every resume reproduced the baseline labels within its phase bound.
    assert report.all_labels_match
    assert report.all_within_bound
    assert all(trial.recovery_io > 0 for trial in report.trials)
