"""Codec micro-benchmark: scalar vs batch throughput on a 1M-edge buffer.

The simulated external-memory model never serializes payloads on the hot
path — it *accounts* them (``encoded_size`` per record).  The batch
record path replaces that per-record call chain with one
``encoded_sizes`` call per chunk, and the real encode/decode used by the
property suite with ``encode_block`` / ``decode_block``.  This bench
measures all three operations both ways on one million sorted edge
records and gates the ratio that the end-to-end speedup rests on:

* **sizing** (the writer's hot path) must be at least ``2×`` faster
  batched in aggregate across the codecs — the CI ratio gate — and at
  least ``1.3×`` faster for every individual codec;
* encode/decode must never be *slower* batched (sanity floor ``1.0×``).

Scalar and batch are timed back to back in paired rounds and gated on
the median per-round ratio: shared-CI noise arrives in bursts, and a
burst that lands inside one side of an unpaired comparison would turn a
real 3× speedup into a flaky gate.

Byte equality between the two paths is asserted before any timing is
trusted, so the ratios can never be bought with a semantic change.
Results land in ``benchmarks/results/micro_codecs.txt``.
"""

import gc
import random
import time

from conftest import RESULTS_DIR

from repro.io.codecs import FixedCodec, GapVarintCodec, VarintCodec

NUM_RECORDS = 1_000_000
SIZING_GATE = 2.0  # aggregate batch sizing must be at least this much faster
SIZING_CODEC_FLOOR = 1.3  # and every individual codec must clearly win
FLOOR = 0.9  # batch encode/decode must never meaningfully lose to scalar
# (0.9, not 1.0: decode's win is the thinnest, and a noise burst on a busy
# shared host can push one paired round's median just under parity)
ROUNDS = 3  # paired scalar/batch rounds; the gate sees the median ratio

CODECS = (
    ("fixed", FixedCodec(8)),
    ("varint", VarintCodec(8)),
    ("gap-varint", GapVarintCodec(8, gap_field=0)),
)


def _edge_buffer():
    """One million sorted (src, dst) records — a run-formation buffer of
    the shape the pipeline sorts and writes."""
    rng = random.Random(42)
    span = 1 << 22
    return sorted(
        (rng.randint(0, span), rng.randint(0, span)) for _ in range(NUM_RECORDS)
    )


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _paired(scalar_fn, batch_fn):
    """Time the two sides back to back, ``ROUNDS`` times, and keep the
    median per-round ratio.  Shared-host noise arrives in bursts that can
    inflate a single measurement several-fold; pairing puts both sides
    inside the same burst and the median drops the worst round."""
    rounds = []
    scalar_result = batch_result = None
    for _ in range(ROUNDS):
        gc.collect()
        scalar_result, t_scalar = _timed(scalar_fn)
        batch_result, t_batch = _timed(batch_fn)
        rounds.append((t_scalar, t_batch))
    t_scalar, t_batch = sorted(rounds, key=lambda r: r[0] / r[1])[ROUNDS // 2]
    return scalar_result, batch_result, t_scalar, t_batch


def _measure(codec, records):
    def scalar_sizes():
        sizes = []
        prev = None
        for record in records:
            sizes.append(codec.encoded_size(record, prev))
            prev = record
        return sizes

    def scalar_encode():
        out = bytearray()
        prev = None
        for record in records:
            out += codec.encode(record, prev)
            prev = record
        return bytes(out)

    s_sizes, b_sizes, t_s_sizes, t_b_sizes = _paired(
        scalar_sizes, lambda: codec.encoded_sizes(records)
    )
    assert b_sizes == s_sizes, "batch sizing diverged from scalar"

    s_enc, b_enc, t_s_enc, t_b_enc = _paired(
        scalar_encode, lambda: codec.encode_block(records)
    )
    assert b_enc == s_enc, "batch encoding diverged from scalar"

    s_dec, b_dec, t_s_dec, t_b_dec = _paired(
        lambda: list(codec.decode_stream(s_enc, 2)),
        lambda: codec.decode_block(s_enc, 2),
    )
    assert b_dec == s_dec == records, "batch decoding diverged from scalar"

    return {
        "sizes": (t_s_sizes, t_b_sizes),
        "encode": (t_s_enc, t_b_enc),
        "decode": (t_s_dec, t_b_dec),
    }


def _mrps(seconds):
    """Millions of records per second."""
    return NUM_RECORDS / seconds / 1e6


def _run_all():
    records = _edge_buffer()
    return {name: _measure(codec, records) for name, codec in CODECS}


def test_micro_codecs_batch_beats_scalar(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    lines = [
        f"Codec micro-benchmark — scalar vs batch on {NUM_RECORDS:,} "
        "sorted edge records",
        f"{'codec':<12} {'op':<8} {'scalar':>12} {'batch':>12} "
        f"{'scalar':>10} {'batch':>10} {'ratio':>7}",
        f"{'':<12} {'':<8} {'s':>12} {'s':>12} "
        f"{'Mrec/s':>10} {'Mrec/s':>10} {'x':>7}",
        "-" * 76,
    ]
    for name, ops in results.items():
        for op, (t_scalar, t_batch) in ops.items():
            ratio = t_scalar / t_batch
            lines.append(
                f"{name:<12} {op:<8} {t_scalar:>12.3f} {t_batch:>12.3f} "
                f"{_mrps(t_scalar):>10.2f} {_mrps(t_batch):>10.2f} "
                f"{ratio:>6.2f}x"
            )
    text = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "micro_codecs.txt").write_text(text)
    print()
    print(text)

    sizing_scalar = sum(ops["sizes"][0] for ops in results.values())
    sizing_batch = sum(ops["sizes"][1] for ops in results.values())
    aggregate = sizing_scalar / sizing_batch
    print(f"aggregate sizing ratio: {aggregate:.2f}x (gate {SIZING_GATE}x)")
    assert aggregate >= SIZING_GATE, (
        f"batch sizing only {aggregate:.2f}x scalar in aggregate "
        f"(gate {SIZING_GATE}x)"
    )
    for name, ops in results.items():
        t_scalar, t_batch = ops["sizes"]
        assert t_scalar / t_batch >= SIZING_CODEC_FLOOR, (
            f"{name}: batch sizing only {t_scalar / t_batch:.2f}x scalar "
            f"(floor {SIZING_CODEC_FLOOR}x)"
        )
        for op in ("encode", "decode"):
            t_scalar, t_batch = ops[op]
            assert t_scalar / t_batch >= FLOOR, (
                f"{name}: batch {op} slower than scalar "
                f"({t_scalar / t_batch:.2f}x)"
            )
