"""Measured contraction behaviour against Theorems 5.3 and 5.4.

Theorem 5.3 bounds the degree of every removed node by ``sqrt(2|E_i|)``;
Theorem 5.4 bounds the new edges per iteration by ``arboricity * |E_i|``
(with arboricity itself at most ``ceil(sqrt(|E_i|))``).  This bench runs
real contractions, records per-iteration |V_i| / |E_i| growth, and checks
both bounds — the measured growth is far below the loose Thm 5.4 bound,
which is the paper's own remark.
"""

import math

from conftest import RESULTS_DIR, report

from repro.bench import (
    BLOCK_SIZE,
    family_graph,
    memory_for_ratio,
    shuffled_edges,
    webspam_graph,
)
from repro.core import ExtSCC, ExtSCCConfig
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io import BlockDevice, MemoryBudget

WORKLOADS = {
    "large-scc": lambda: family_graph("large-scc", num_nodes=2500, seed=6),
    "webspam": lambda: webspam_graph(num_nodes=2500),
}


def _run_contractions():
    results = {}
    for name, build in WORKLOADS.items():
        graph = build()
        edges = shuffled_edges(graph)
        device = BlockDevice(block_size=BLOCK_SIZE)
        memory = MemoryBudget(memory_for_ratio(graph.num_nodes, 0.5))
        edge_file = EdgeFile.from_edges(device, "E", edges)
        node_file = NodeFile.from_ids(device, "V", range(graph.num_nodes),
                                      memory, presorted=True)
        out = ExtSCC(ExtSCCConfig.optimized()).run(
            device, edge_file, memory, nodes=node_file
        )
        results[name] = out
    return results


def test_contraction_bounds(benchmark):
    results = benchmark.pedantic(_run_contractions, rounds=1, iterations=1)
    for name, out in results.items():
        lines = [
            f"Contraction trace — {name}",
            f"{'iter':>4}  {'|V_i|':>8}  {'|E_i|':>9}  {'growth':>7}  {'Thm5.4 bound':>12}",
        ]
        for record in out.iterations:
            arboricity_bound = math.ceil(math.sqrt(max(1, record.num_edges)))
            max_new = arboricity_bound * record.num_edges
            lines.append(
                f"{record.level:>4}  {record.num_nodes:>8,}  {record.num_edges:>9,}"
                f"  {record.edge_growth:>7.2f}  {max_new:>12,}"
            )
            # Theorem 5.4: new edges bounded by arboricity * |E_i|.
            new_edges = max(0, record.next_num_edges - record.num_edges)
            assert new_edges <= max_new
            # Contractible at every level.
            assert record.next_num_nodes < record.num_nodes
        text = "\n".join(lines) + "\n"
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"contraction_trace_{name}.txt").write_text(text)

        # Section VII's goal: with the optimizations, per-iteration growth
        # stays moderate (paper: "it is even possible that |E_{i+1}| <
        # |E_i|"); require the geometric-mean growth to stay small.
        growths = [r.edge_growth for r in out.iterations if r.edge_growth > 0]
        if growths:
            geo_mean = math.exp(sum(math.log(g) for g in growths) / len(growths))
            assert geo_mean < 2.0, (name, growths)
