"""DFS-SCC's message-store structures compared: BRT [8] vs LSM ([17] role).

Both structures serve the same deferred-deletion role in the external DFS;
their constants differ — the BRT pays tree-path rewrites per extraction,
the LSM pays run probes plus periodic compaction.  This bench runs the
full DFS-SCC with each backend on the same graphs and reports the ledger;
either way, the random-I/O-bound profile that disqualifies DFS-SCC at
scale is unchanged (the paper's point survives the choice of structure).
"""

from conftest import RESULTS_DIR

from repro.baselines import dfs_scc
from repro.bench import BLOCK_SIZE, family_graph, shuffled_edges, webspam_graph
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io import BlockDevice, MemoryBudget

WORKLOADS = {
    "large-scc": lambda: family_graph("large-scc", num_nodes=1500, seed=11),
    "webspam": lambda: webspam_graph(num_nodes=1500),
}


def _run_all():
    rows = []
    for workload_name, build in WORKLOADS.items():
        graph = build()
        edges = shuffled_edges(graph)
        reference = None
        for store in ("brt", "lsm"):
            device = BlockDevice(block_size=BLOCK_SIZE)
            memory = MemoryBudget(8 * graph.num_nodes // 2)
            edge_file = EdgeFile.from_edges(device, "E", edges)
            node_file = NodeFile.from_ids(
                device, "V", range(graph.num_nodes), memory, presorted=True
            )
            out = dfs_scc(device, edge_file, node_file, memory,
                          message_store=store)
            if reference is None:
                reference = out.result
            assert out.result == reference, (workload_name, store)
            rows.append(
                (workload_name, store, out.io.total, out.io.random,
                 out.brt_messages)
            )
    return rows


def test_message_stores(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        "DFS-SCC message stores — BRT [8] vs LSM",
        f"{'workload':>10} {'store':>5} {'I/Os':>10} {'random':>9} {'messages':>9}",
    ]
    for workload, store, total, rand, messages in rows:
        lines.append(
            f"{workload:>10} {store:>5} {total:>10,} {rand:>9,} {messages:>9,}"
        )
        # The paper's critique holds under either structure: random I/O
        # dominates the external DFS.
        assert rand > total * 0.3, (workload, store)
    text = "\n".join(lines) + "\n"
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "message_stores.txt").write_text(text)
