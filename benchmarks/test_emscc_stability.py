"""Section IV's EM-SCC instability claim, measured.

"Even if EM-SCC can terminate in a finite number of iterations, the
contraction is unstable since it relies largely on the order of edges
stored on disk."  This bench constructs a graph EM-SCC *can* solve — a few
pure cycles plus a small acyclic tail — and stores it in two orders:
cycle-contiguous (each cycle's edges adjacent, the friendliest layout) and
uniformly shuffled (how a crawl actually arrives).  EM-SCC terminates on
the first and spins on the second; Ext-SCC-Op's cost is identical on both,
because its node selection "does not rely on the order of edges stored on
disk".
"""

import random

from conftest import RESULTS_DIR

from repro.bench import BLOCK_SIZE, run_algorithm

SEEDS = (0, 1, 2)
NUM_CYCLES = 4
CYCLE_LEN = 300
FILLER = 100
# Below the semi-external threshold (8 * 1300 + B), so Ext-SCC really
# contracts, yet large enough that an EM-SCC chunk can hold a whole cycle.
MEMORY = 9_600  # chunk = 300 edges, aligned with the cycle length


def _workload(seed):
    """Cycle edges first (contiguous), then a path over the filler nodes."""
    rng = random.Random(seed)
    nodes = list(range(NUM_CYCLES * CYCLE_LEN + FILLER))
    rng.shuffle(nodes)
    edges = []
    for c in range(NUM_CYCLES):
        members = nodes[c * CYCLE_LEN:(c + 1) * CYCLE_LEN]
        edges.extend(
            (members[i], members[(i + 1) % CYCLE_LEN]) for i in range(CYCLE_LEN)
        )
    filler = nodes[NUM_CYCLES * CYCLE_LEN:]
    edges.extend((filler[i], filler[i + 1]) for i in range(FILLER - 1))
    return edges, len(nodes)


def _run_all():
    rows = []
    for seed in SEEDS:
        contiguous, num_nodes = _workload(seed)
        shuffled = list(contiguous)
        random.Random(seed + 100).shuffle(shuffled)
        for order_name, edges in (("contiguous", contiguous),
                                  ("shuffled", shuffled)):
            for algorithm in ("EM-SCC", "Ext-SCC-Op"):
                result = run_algorithm(
                    algorithm, edges, num_nodes, MEMORY,
                    block_size=BLOCK_SIZE, io_budget=2_000_000,
                )
                rows.append((seed, order_name, algorithm, result))
    return rows


def test_emscc_order_sensitivity(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        "EM-SCC vs edge storage order (Section IV's stability claim)",
        f"{'seed':>4} {'order':>11} {'algorithm':>10} {'status':>8} {'I/Os':>9}",
    ]
    outcomes = {}
    for seed, order_name, algorithm, result in rows:
        lines.append(
            f"{seed:>4} {order_name:>11} {algorithm:>10} {result.status:>8} "
            f"{result.io_total:>9,}"
        )
        outcomes[(seed, order_name, algorithm)] = result
    text = "\n".join(lines) + "\n"
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "emscc_stability.txt").write_text(text)

    for seed in SEEDS:
        # Friendly layout: every cycle sits inside a memory chunk, EM-SCC
        # contracts them all and finishes.
        assert outcomes[(seed, "contiguous", "EM-SCC")].ok
        # Crawl-order layout: no chunk ever holds a whole cycle; the
        # paper's Case-1.
        assert outcomes[(seed, "shuffled", "EM-SCC")].status == "NONTERM"
        # Ext-SCC-Op is order-insensitive (identical schedule and cost).
        a = outcomes[(seed, "contiguous", "Ext-SCC-Op")]
        b = outcomes[(seed, "shuffled", "Ext-SCC-Op")]
        assert a.ok and b.ok
        assert abs(a.io_total - b.io_total) <= 0.15 * max(a.io_total, b.io_total)
