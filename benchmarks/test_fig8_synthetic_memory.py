"""Figure 8 — synthetic data: cost vs memory on Massive-/Large-/Small-SCC.

Paper: six subplots (time and #I/Os for the three Table I families), M
swept 200M..600M; costs fall as M grows, faster at the small end; DFS-SCC
is INF everywhere; the three families behave alike (SCC size/count barely
matter) — which Exp-2 calls out explicitly.

Here: the same three families at simulation scale with the feasible slice
of the memory-ratio sweep (see workloads.MEMORY_RATIOS), plus the
cross-family similarity check.
"""

import pytest
from conftest import assert_ext_wins_or_inf, assert_monotone, report

from repro.bench import (
    BENCH_NODES,
    BLOCK_SIZE,
    MEMORY_RATIOS,
    family_graph,
    memory_for_ratio,
    run_algorithm,
    run_sweep,
    shuffled_edges,
)

FAMILIES = ("massive-scc", "large-scc", "small-scc")
RATIOS = (MEMORY_RATIOS[0], MEMORY_RATIOS[2], MEMORY_RATIOS[4])  # 0.4/0.5/0.75


def _run_family(family):
    graph = family_graph(family)
    edges = shuffled_edges(graph)
    n = graph.num_nodes
    points = [(r, edges, n, memory_for_ratio(n, r)) for r in RATIOS]
    sweep = run_sweep(
        f"Fig 8 — {family}: cost vs memory", "M/(8|V|+B)", points,
        ["Ext-SCC", "Ext-SCC-Op"], block_size=BLOCK_SIZE,
    )
    budget = max(4 * max(r.io_total for r in sweep.runs), 100_000)
    for ratio, edges_, n_, memory in points:
        for name in ("DFS-SCC", "EM-SCC"):
            sweep.runs.append(
                run_algorithm(name, edges_, n_, memory, block_size=BLOCK_SIZE,
                              io_budget=budget, x=ratio)
            )
    return sweep


def test_fig8_synthetic_memory(benchmark):
    sweeps = benchmark.pedantic(
        lambda: {family: _run_family(family) for family in FAMILIES},
        rounds=1, iterations=1,
    )
    for family, sweep in sweeps.items():
        report(sweep, f"fig8_{family}_memory.txt")
        for name in ("Ext-SCC", "Ext-SCC-Op"):
            series = sweep.series(name)
            assert all(r.ok for r in series), (family, name)
            assert_monotone([r.io_total for r in series], increasing=False)
            assert all(r.io_random == 0 for r in series)
        # Ext-SCC-Op ahead at the tight-memory end (paper: ~20% average).
        assert (
            sweeps[family].result("Ext-SCC-Op", RATIOS[0]).io_total
            <= sweeps[family].result("Ext-SCC", RATIOS[0]).io_total
        )
        assert_ext_wins_or_inf(sweep, "Ext-SCC-Op", "DFS-SCC")
        assert all(not r.ok for r in sweep.series("EM-SCC"))

    # Exp-2: "the results for both Large-SCC and Small-SCC datasets are
    # similar to those in the Massive-SCC dataset" — same-ratio costs stay
    # within a small factor across families.
    for ratio in RATIOS:
        costs = [
            sweeps[f].result("Ext-SCC-Op", ratio).io_total for f in FAMILIES
        ]
        assert max(costs) <= 3 * min(costs), (ratio, costs)
