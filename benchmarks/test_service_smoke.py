"""Query-service smoke: the batched-lookup I/O gate (CI `service-smoke`).

Boots the daemon over a store built from the Fig. 6 smoke graph (the
webspam stand-in's 20% subsample), then measures a 10k-point lookup
workload two ways with label caches disabled:

* **batched** — one engine flush: sorted by block, one read per
  *distinct* block (the tentpole's O(sorted scan) claim);
* **random**  — the same 10k points one by one: one random block read
  each, the access pattern a naive point-lookup service would produce.

The gate: batched block reads must be <= 5% of the random-read count,
with byte-identical answers.  A two-tenant pass then checks per-session
ledgers stay isolated while an IOBudget-capped tenant is throttled, and
the JSON report surfaces both cache hit rates (zero-lookup-safe).
"""

import json

from conftest import RESULTS_DIR

from repro.bench import BLOCK_SIZE, shuffled_edges, subsample_edges, webspam_graph
from repro.exceptions import IOBudgetExceeded
from repro.service import LabelStore, QueryDaemon, ServiceClient, build_store
from repro.service.session import SessionManager

LOOKUPS = 10_000
GATE = 0.05


def _smoke_edges():
    """The Fig. 6 CI smoke workload: 20% of the webspam stand-in."""
    graph = webspam_graph()
    return subsample_edges(shuffled_edges(graph), 20), graph.num_nodes


def _lookup_points(num_nodes):
    """10k deterministic points with repeats (a skewless query mix)."""
    return [(i * 7919) % num_nodes for i in range(LOOKUPS)]


def test_service_smoke_batched_vs_random(benchmark, tmp_path):
    edges, n = _smoke_edges()
    store_dir = tmp_path / "store"
    meta = build_store(edges, store_dir, num_nodes=n, block_size=BLOCK_SIZE)
    points = _lookup_points(n)

    def run_batched():
        with LabelStore(store_dir, cache_entries=0) as store:
            before = store.stats.snapshot()
            answers = store.lookup_labels(None, points)
            return answers, (store.stats.snapshot() - before).total

    batched_answers, batched_reads = benchmark.pedantic(
        run_batched, rounds=1, iterations=1
    )

    # The same points individually: one random read per lookup (caches
    # off, and single-point batches bypass the table's buffer pool).
    with LabelStore(store_dir, cache_entries=0) as store:
        before = store.stats.snapshot()
        random_answers = {}
        for node in points:
            random_answers[node] = store.lookup_labels(None, [node])[node]
        random_delta = store.stats.snapshot() - before
    random_reads = random_delta.total

    # Byte-identical answers, then the I/O gate.
    assert batched_answers == random_answers
    assert random_delta.rand_reads == random_reads  # all random, by design
    ratio = batched_reads / random_reads
    assert ratio <= GATE, (batched_reads, random_reads, ratio)

    # Daemon boot + client round trip over the same store, plus the
    # cache-enabled hit-rate report for the JSON (zero-lookup-safe).
    store = LabelStore(store_dir)
    with QueryDaemon(store, epoch_seconds=0.001, owns_store=True) as daemon:
        daemon.start()
        with ServiceClient(port=daemon.address[1]) as client:
            client.open_session("smoke")
            sample = sorted(set(points[:64]))
            assert client.scc_label(sample) == {
                node: batched_answers[node] for node in sample
            }
            client.scc_label(sample)  # now cache hits
            server = client.server_stats()
    label_report = server["scc_label"]
    assert 0.0 <= label_report["label_cache_hit_rate"] <= 1.0
    assert label_report["label_cache_hit_rate"] > 0.0
    assert 0.0 <= label_report["table_cache_hit_rate"] <= 1.0
    # The untouched topo engine: the zero-lookup case stays well-defined.
    assert server["topo_order"]["label_cache_hit_rate"] == 0.0

    report = {
        "workload": "fig6-smoke-20pct",
        "num_nodes": meta["num_nodes"],
        "num_sccs": meta["num_sccs"],
        "block_size": BLOCK_SIZE,
        "lookups": LOOKUPS,
        "batched_block_reads": batched_reads,
        "random_block_reads": random_reads,
        "batched_over_random": ratio,
        "gate": GATE,
        "label_cache_hit_rate": label_report["label_cache_hit_rate"],
        "table_cache_hit_rate": label_report["table_cache_hit_rate"],
        "physical_io": server["physical_io"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "service_smoke.json").write_text(json.dumps(report, indent=1))
    print()
    print(
        f"service smoke: {LOOKUPS:,} lookups — batched {batched_reads} "
        f"block reads vs {random_reads:,} random ({ratio:.2%}, "
        f"gate {GATE:.0%})"
    )


def test_service_smoke_tenant_isolation(tmp_path):
    """Two tenants on the smoke store: the capped one throttles at
    admission (zero I/O charged), the other is unaffected."""
    edges, n = _smoke_edges()
    store_dir = tmp_path / "store"
    build_store(edges, store_dir, num_nodes=n, block_size=BLOCK_SIZE)
    points = _lookup_points(n)

    with LabelStore(store_dir, cache_entries=0) as store:
        manager = SessionManager()
        free = manager.create("free")
        capped = manager.create("capped", io_budget=2)

        free_answers = store.lookup_labels(free, points)
        assert free.stats.total == store.labels.file.num_blocks

        first = store.lookup_labels(capped, [points[0], points[1]])
        charged = capped.stats.total
        assert 0 < charged <= 2
        try:
            store.lookup_labels(capped, points)  # needs every block
            raise AssertionError("capped tenant was not throttled")
        except IOBudgetExceeded:
            pass
        # The rejected batch charged nothing; the other tenant still works.
        assert capped.stats.total == charged
        assert capped.throttled == 1
        again = store.lookup_labels(free, points)
        assert again == free_answers
        assert free.throttled == 0
        for node, label in first.items():
            assert free_answers[node] == label

        roll = manager.roll_up()
        assert roll["throttled"] == 1
        assert roll["attributed"]["total"] == free.stats.total + charged
