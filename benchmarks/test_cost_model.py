"""Theorems 5.1/5.2/6.1 as a benchmark: predicted vs. measured I/O.

The paper gives per-phase I/O complexities; `repro.analysis.CostModel`
instantiates them with this implementation's constants.  This bench runs
Ext-SCC on the three Table I families and on the webspam stand-in, then
compares the model's prediction (computed from the measured per-iteration
|V_i|, |E_i| sizes) against the ledger — the prediction must land within
a constant factor, point for point.
"""

from conftest import RESULTS_DIR

from repro.analysis import CostModel
from repro.bench import (
    BLOCK_SIZE,
    family_graph,
    memory_for_ratio,
    shuffled_edges,
    subsample_edges,
    webspam_graph,
)
from repro.core import ExtSCC, ExtSCCConfig
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io import BlockDevice, MemoryBudget

WORKLOADS = {
    "massive-scc": lambda: family_graph("massive-scc", num_nodes=2500, seed=7),
    "large-scc": lambda: family_graph("large-scc", num_nodes=2500, seed=7),
    "small-scc": lambda: family_graph("small-scc", num_nodes=2500, seed=7),
    "webspam": lambda: webspam_graph(num_nodes=2500),
}


def _measure(edges, num_nodes, memory_bytes, config):
    """Run one configuration and return (output, calibrated model)."""
    device = BlockDevice(block_size=BLOCK_SIZE)
    memory = MemoryBudget(memory_bytes)
    edge_file = EdgeFile.from_edges(device, "E", edges)
    node_file = NodeFile.from_ids(
        device, "V", range(num_nodes), memory, presorted=True
    )
    out = ExtSCC(config).run(device, edge_file, memory, nodes=node_file)
    # Calibrate stored bytes/record per stream class from the run's own
    # ledger; under codec="fixed" this is the identity calibration.
    calibration = {
        width: stored / count
        for width, (count, stored) in device.stats.bytes_by_width.items()
        if count
    }
    model = CostModel(BLOCK_SIZE, memory_bytes, bytes_per_record=calibration)
    return out, model


def _run_all():
    rows = []
    for name, build in WORKLOADS.items():
        graph = build()
        edges = shuffled_edges(graph)
        memory_bytes = memory_for_ratio(graph.num_nodes, 0.5)
        for variant, config in (
            ("Ext-SCC", ExtSCCConfig.baseline()),
            ("Ext-SCC-Op", ExtSCCConfig.optimized()),
        ):
            out, model = _measure(edges, graph.num_nodes, memory_bytes, config)
            predicted = model.ext_scc(
                out.iterations, product_operator=config.product_operator
            )
            rows.append((name, variant, predicted, out.io.total))
    return rows


def test_cost_model(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        "Cost model (Thms 5.1/5.2/6.1) — predicted vs measured block I/Os",
        f"{'workload':>12} {'variant':>11} {'predicted':>10} {'measured':>10} {'ratio':>6}",
    ]
    for name, variant, predicted, measured in rows:
        ratio = measured / predicted if predicted else float("inf")
        lines.append(
            f"{name:>12} {variant:>11} {predicted:>10,} {measured:>10,} {ratio:>6.2f}"
        )
        # The model must predict within a constant factor in both
        # directions — the complexity statement, made concrete.
        assert predicted / 3 <= measured <= predicted * 3, (name, variant)
    text = "\n".join(lines) + "\n"
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "cost_model.txt").write_text(text)


def test_cost_model_calibrated_within_15pct_on_fig6_smoke(benchmark):
    """On the Fig 6 smoke workload (the 20% WEBSPAM point CI runs), the
    byte-calibrated model must predict the *compressed* pipeline's total
    within 15% — tight enough that a codec accounting bug (charging
    logical instead of stored bytes anywhere) fails immediately.

    At larger sizes the model drifts (replacement selection forms far
    fewer runs than m/2M on the partially-sorted intermediates the
    pipeline feeds it — a data-dependence the closed form ignores, for
    ``codec="fixed"`` just the same), so the headline 3x gate above covers
    the full sweep and this sharp gate covers the smoke point.
    """
    graph = webspam_graph()
    edges = subsample_edges(shuffled_edges(graph), 20)
    memory_bytes = memory_for_ratio(graph.num_nodes, 0.47)

    def run_both():
        rows = []
        for variant, config in (
            ("Ext-SCC", ExtSCCConfig.baseline()),
            ("Ext-SCC-Op", ExtSCCConfig.optimized()),
        ):
            out, model = _measure(edges, graph.num_nodes, memory_bytes, config)
            predicted = model.ext_scc(
                out.iterations, product_operator=config.product_operator
            )
            rows.append((variant, predicted, out.io.total))
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = ["Calibrated cost model vs compressed pipeline (Fig 6 smoke, 20%)"]
    for variant, predicted, measured in rows:
        error = abs(measured - predicted) / measured
        lines.append(
            f"{variant:>11}: predicted {predicted:,}, measured {measured:,} "
            f"({error:.1%} off)"
        )
        assert error <= 0.15, (variant, predicted, measured)
    text = "\n".join(lines) + "\n"
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "cost_model_calibrated.txt").write_text(text)
