"""Multi-source BFS vs the FW-BW family on the Fig. 6 size points.

Wang et al.'s batched reachability shares one sequential edge scan among
up to S concurrent pivot searches (one mask bit per source), so a
workload that single-pivot FW-BW covers in R rounds of scans costs about
R/S rounds here.  This bench runs the semi-external solvers directly on
each Fig. 6 subsample (the webspam stand-in, 20%..100% of edges) and
checks the two claims the PR makes for ``multi-bfs``:

* **same answer** — labels identical to ``forward-backward`` and
  ``parallel-fw-bw`` at every size point (canonical min-member labels,
  so dict equality is exact);
* **fewer scans** — strictly fewer sequential scans of the edge file
  than ``parallel-fw-bw`` at the 40% point (and, as the table shows, at
  every other point too).

Scan counts divide the sequential-read delta by the edge file's block
count: every solver round reads each block exactly once, so the quotient
is the round count.  Results land in ``benchmarks/results/multi_bfs.txt``.
"""

from conftest import RESULTS_DIR

from repro.bench import BLOCK_SIZE, shuffled_edges, subsample_edges, webspam_graph
from repro.graph.edge_file import EdgeFile
from repro.io import BlockDevice
from repro.semi_external import SEMI_SCC_SOLVERS

PERCENTAGES = (20, 40, 60, 80, 100)
SCAN_GATE_PCT = 40  # the point where the strict scan win is a hard gate
SOLVERS = ("forward-backward", "parallel-fw-bw", "multi-bfs")


def _run_solver(name, edges, n):
    device = BlockDevice(block_size=BLOCK_SIZE)
    edge_file = EdgeFile.from_edges(device, "E", edges)
    baseline = device.stats.snapshot()
    labels = SEMI_SCC_SOLVERS[name](edge_file, range(n))
    delta = device.stats.snapshot() - baseline
    num_blocks = edge_file.file.num_blocks
    scans = delta.sequential // max(1, num_blocks)
    return labels, scans, delta.total, delta.random


def _run_all():
    graph = webspam_graph()
    edges = shuffled_edges(graph)
    n = graph.num_nodes
    rows = {}
    for pct in PERCENTAGES:
        sub = subsample_edges(edges, pct)
        for name in SOLVERS:
            rows[(pct, name)] = _run_solver(name, sub, n)
    return rows


def test_multi_bfs_matches_fw_bw_with_fewer_scans(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    lines = [
        "Multi-source BFS vs FW-BW family — Fig 6 size points "
        "(webspam stand-in)",
        f"{'size%':>5} {'solver':>17} {'scans':>6} {'I/Os':>10} {'random':>7}",
    ]
    for pct in PERCENTAGES:
        for name in SOLVERS:
            _, scans, total, rand = rows[(pct, name)]
            lines.append(
                f"{pct:>5} {name:>17} {scans:>6} {total:>10,} {rand:>7,}"
            )
    text = "\n".join(lines) + "\n"
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "multi_bfs.txt").write_text(text)

    for pct in PERCENTAGES:
        reference = rows[(pct, "forward-backward")][0]
        for name in SOLVERS[1:]:
            assert rows[(pct, name)][0] == reference, (pct, name)
        # Scan-only solvers: not a single random access anywhere.
        for name in SOLVERS:
            assert rows[(pct, name)][3] == 0, (pct, name)

    # The batched scans must pay off where the gate says so (strictly).
    gate_multi = rows[(SCAN_GATE_PCT, "multi-bfs")][1]
    gate_parallel = rows[(SCAN_GATE_PCT, "parallel-fw-bw")][1]
    assert gate_multi < gate_parallel, (gate_multi, gate_parallel)
