"""Figure 9(a)/(b) — Large-SCC: cost vs node count |V| at fixed memory.

Paper: |V| swept 25M..200M with M fixed at 400M; costs rise steeply with
|V| (the stop condition gets harder, each iteration sorts more), DFS-SCC
is INF from 50M up and takes >20h even at 25M.

Here: |V| swept around the benchmark scale with M fixed at half the
mid-size threshold, so the largest graphs run at the deep ratios where the
paper's own runs approached the 24h cutoff — the largest point is allowed
to hit the I/O budget, exactly like the paper's near-INF right edge.
"""

from conftest import assert_ext_wins_or_inf, assert_monotone, report

from repro.bench import (
    BLOCK_SIZE,
    family_graph,
    memory_for_ratio,
    run_algorithm,
    run_sweep,
    shape_summary,
    shuffled_edges,
)

NODE_COUNTS = (1500, 2000, 3000, 4000, 6000)
FIXED_MEMORY_NODES = 3000  # M = 0.5 * threshold(3000), fixed across the sweep
EXT_BUDGET = 1_500_000


def _run_sweep():
    memory = memory_for_ratio(FIXED_MEMORY_NODES, 0.5)
    points = []
    for n in NODE_COUNTS:
        graph = family_graph("large-scc", num_nodes=n, seed=1)
        points.append((n, shuffled_edges(graph), n, memory))
    sweep = run_sweep(
        "Fig 9(a)/(b) — Large-SCC: cost vs |V| (M fixed)", "|V|", points,
        ["Ext-SCC", "Ext-SCC-Op"], block_size=BLOCK_SIZE, io_budget=EXT_BUDGET,
    )
    finished = [r.io_total for r in sweep.runs if r.ok]
    budget = max(4 * max(finished), 100_000)
    for n, edges, n_, memory_ in points:
        for name in ("DFS-SCC", "EM-SCC"):
            sweep.runs.append(
                run_algorithm(name, edges, n_, memory_, block_size=BLOCK_SIZE,
                              io_budget=budget, x=n)
            )
    return sweep


def test_fig9_vary_v(benchmark):
    sweep = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    report(sweep, "fig9_vary_v.txt",
           extra=shape_summary(sweep, "Ext-SCC-Op", "DFS-SCC"))

    for name in ("Ext-SCC", "Ext-SCC-Op"):
        series = sweep.series(name)
        finished = [r for r in series if r.ok]
        # The small end always finishes; the largest point may be INF —
        # the paper's own 200M point nearly was.
        assert series[0].ok and series[1].ok, name
        assert_monotone([r.io_total for r in finished], increasing=True)
        assert all(r.io_random == 0 for r in finished)

    assert_ext_wins_or_inf(sweep, "Ext-SCC-Op", "DFS-SCC")
    assert all(not r.ok for r in sweep.series("EM-SCC"))
