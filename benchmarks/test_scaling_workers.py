"""Fig. 6 smoke workload swept over worker counts — the parallelism gate.

The sharded/striped runtime must not change *what* the pipeline does, only
*where* each block I/O lands: every worker count K produces byte-identical
SCC labels and an identical total I/O ledger, while the critical path
(makespan — the busiest channel's share, phase by phase) shrinks roughly
as 1/K.  This benchmark runs the CI smoke workload (the 20% WEBSPAM point)
at K in {1, 2, 4, 8} and gates:

* K=1 reproduces the checked-in ``fig6_smoke.baseline.json`` ledger
  **exactly** (not within tolerance — parallelism must cost nothing when
  off);
* labels and total/sequential/random counters identical across all K;
* K=4 makespan <= 0.5x the K=1 makespan (the acceptance bar);
* the calibrated :class:`~repro.analysis.CostModel` predicts each K's
  makespan within 20%.

Results go to ``benchmarks/results/scaling_workers.txt``.
"""

import json
from dataclasses import replace

from conftest import RESULTS_DIR

from repro.analysis import CostModel
from repro.bench import (
    BLOCK_SIZE,
    format_scaling_table,
    memory_for_ratio,
    shuffled_edges,
    subsample_edges,
    webspam_graph,
)
from repro.bench.harness import RunResult
from repro.core import ExtSCC, ExtSCCConfig
from repro.graph.edge_file import EdgeFile, NodeFile
from repro.io import MemoryBudget, StripedDevice

WORKER_COUNTS = (1, 2, 4, 8)
MEMORY_RATIO = 0.47  # same point as the Fig 6 smoke gate
SMOKE_BASELINE = RESULTS_DIR / "fig6_smoke.baseline.json"


def _workload():
    graph = webspam_graph()
    edges = subsample_edges(shuffled_edges(graph), 20)
    return edges, graph.num_nodes, memory_for_ratio(graph.num_nodes, MEMORY_RATIO)


def _run_k(edges, num_nodes, memory_bytes, workers):
    """One Ext-SCC-Op run on a K-channel striped device; returns the
    output, the calibrated cost model, and a table row."""
    device = StripedDevice(block_size=BLOCK_SIZE, channels=workers)
    memory = MemoryBudget(memory_bytes)
    edge_file = EdgeFile.from_edges(device, "E", edges)
    node_file = NodeFile.from_ids(
        device, "V", range(num_nodes), memory, presorted=True
    )
    config = replace(ExtSCCConfig.optimized(), workers=workers)
    out = ExtSCC(config).run(device, edge_file, memory, nodes=node_file)
    calibration = {
        width: stored / count
        for width, (count, stored) in device.stats.bytes_by_width.items()
        if count
    }
    model = CostModel(BLOCK_SIZE, memory_bytes, bytes_per_record=calibration)
    row = RunResult(
        algorithm="Ext-SCC-Op", x=workers, status="OK",
        io_total=out.io.total, io_sequential=out.io.sequential,
        io_random=out.io.random, wall_seconds=out.wall_seconds,
        num_sccs=out.result.num_sccs, iterations=out.num_iterations,
        workers=workers, makespan=out.makespan, channel_io=out.channel_io,
    )
    return out, model, row


def _run_all():
    edges, num_nodes, memory_bytes = _workload()
    return [_run_k(edges, num_nodes, memory_bytes, k) for k in WORKER_COUNTS]


def test_scaling_workers(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    by_k = {row.workers: (out, model, row) for out, model, row in results}
    base_out, base_model, base_row = by_k[1]

    # -- K=1 reproduces the pre-parallelism ledger exactly -------------------
    if SMOKE_BASELINE.exists():
        baseline = json.loads(SMOKE_BASELINE.read_text())
        expected = next(
            r for r in baseline["runs"]
            if r["algorithm"] == "Ext-SCC-Op" and r["x"] == 20
        )
        assert base_row.io_total == expected["io_total"]
        assert base_row.io_sequential == expected["io_sequential"]
        assert base_row.io_random == expected["io_random"]
        assert base_row.num_sccs == expected["num_sccs"]
    # One channel means no striping: the critical path is the whole run.
    assert base_row.makespan == base_row.io_total

    # -- ledger identity and label identity across every K -------------------
    for k in WORKER_COUNTS[1:]:
        out, _, row = by_k[k]
        assert out.result.labels == base_out.result.labels, f"K={k}"
        assert row.io_total == base_row.io_total, f"K={k}"
        assert row.io_sequential == base_row.io_sequential, f"K={k}"
        assert row.io_random == base_row.io_random, f"K={k}"
        assert row.iterations == base_row.iterations, f"K={k}"
        # Channels partition the total: rollup must be exact.
        assert sum(row.channel_io) == row.io_total, f"K={k}"
        # More channels never lengthens the critical path.
        assert row.makespan <= base_row.makespan, f"K={k}"

    # -- the acceptance bar: K=4 at least halves the critical path -----------
    assert by_k[4][2].makespan <= 0.5 * base_row.makespan, (
        by_k[4][2].makespan, base_row.makespan
    )

    # -- calibrated model predicts each makespan within 20% ------------------
    config = ExtSCCConfig.optimized()
    model_lines = [
        "",
        "Cost-model makespan prediction (calibrated per run)",
        f"{'workers':>7} {'predicted':>10} {'measured':>10} {'error':>6}",
    ]
    for k in WORKER_COUNTS:
        out, model, row = by_k[k]
        predicted = model.ext_scc_makespan(
            out.iterations, k, product_operator=config.product_operator
        )
        error = abs(row.makespan - predicted) / row.makespan
        model_lines.append(
            f"{k:>7} {predicted:>10,} {row.makespan:>10,} {error:>6.1%}"
        )
        if k > 1:
            assert error <= 0.20, (k, predicted, row.makespan)

    rows = [row for _, _, row in results]
    text = (
        format_scaling_table(
            rows, title="Fig 6 smoke (WEBSPAM 20%) — worker scaling"
        )
        + "\n" + "\n".join(model_lines) + "\n"
    )
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "scaling_workers.txt").write_text(text)
