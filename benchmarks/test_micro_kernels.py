"""Kernel micro-benchmark: scalar vs kernel on the semi-external hot loops.

The two CPU paths the kernel layer (`repro.kernels`) vectorizes:

* **frontier propagation** — one Jacobi staging pass
  (:meth:`~repro.kernels.ReachabilityKernel.stage_pass`) over a million
  edges, the inner loop of every FW-BW-family reachability round; the
  fast form is numpy boolean-mask gathering/scattering;
* **unkeyed 2-way merge** — :func:`repro.kernels.merge_two_unkeyed` over
  two half-million-record sorted runs, the most common merge shape of
  the external sort; the fast form is the chunked concatenate-and-sort
  merge (Timsort's C galloping run-merge — see
  :mod:`repro.kernels.merge` for why numpy loses here), gated by the
  same ``REPRO_NUMPY`` switch.

Each op is timed scalar vs kernel in paired back-to-back rounds (the
:mod:`test_micro_codecs` pattern: shared-CI noise arrives in bursts, and
pairing plus a median-of-rounds ratio keeps a burst from landing on one
side of the comparison).  Mark-for-mark / record-for-record equality is
asserted before any timing is trusted, so the ratios can never be bought
with a semantic change.

Gates: the kernel path must be at least ``2×`` faster in aggregate
across the two kernels, and at least ``1.3×`` faster for each
individually.  Results land in ``benchmarks/results/micro_kernels.txt``.
"""

import gc
import random
import time

import pytest

from conftest import RESULTS_DIR

from repro import kernels
from repro.kernels.reachability import _NumpyReachability, _ScalarReachability

NUM_EDGES = 1_000_000
NUM_NODES = 200_000
MERGE_RECORDS = 500_000  # per side
BLOCK_RECORDS = 2048  # edges per simulated block handed to the kernel
AGGREGATE_GATE = 2.0  # kernels must be at least this much faster overall
KERNEL_FLOOR = 1.3  # and clearly win on each kernel individually
ROUNDS = 3  # paired scalar/kernel rounds; the gate sees the median ratio


def _has_numpy():
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


pytestmark = pytest.mark.skipif(
    not _has_numpy(), reason="numpy not installed (scalar-only build)"
)


def _edge_blocks():
    """A million random edges cut into block-sized tuples — the shape
    ``EdgeFile.scan_blocks`` feeds the reachability kernels."""
    rng = random.Random(42)
    edges = [
        (rng.randrange(NUM_NODES), rng.randrange(NUM_NODES))
        for _ in range(NUM_EDGES)
    ]
    return [
        tuple(edges[i : i + BLOCK_RECORDS])
        for i in range(0, NUM_EDGES, BLOCK_RECORDS)
    ]


def _sorted_runs():
    rng = random.Random(7)
    span = 1 << 22
    make = lambda: sorted(
        (rng.randint(0, span), rng.randint(0, span))
        for _ in range(MERGE_RECORDS)
    )
    return make(), make()


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _paired(scalar_fn, kernel_fn):
    """Median-of-paired-rounds timing (see module docs)."""
    rounds = []
    scalar_result = kernel_result = None
    for _ in range(ROUNDS):
        gc.collect()
        scalar_result, t_scalar = _timed(scalar_fn)
        kernel_result, t_kernel = _timed(kernel_fn)
        rounds.append((t_scalar, t_kernel))
    t_scalar, t_kernel = sorted(rounds, key=lambda r: r[0] / r[1])[ROUNDS // 2]
    return scalar_result, kernel_result, t_scalar, t_kernel


def _measure_propagation(blocks):
    nodes = list(range(NUM_NODES))
    part = [0] * NUM_NODES
    active = {0}
    seeds = random.Random(3).sample(range(NUM_NODES), 64)
    scalar_kernel = _ScalarReachability(nodes)
    previous = kernels.set_enabled(True)
    try:
        numpy_kernel = _NumpyReachability(nodes)
    finally:
        kernels.set_enabled(previous)

    def one_pass(kernel):
        fwd = bytearray(NUM_NODES)
        bwd = bytearray(NUM_NODES)
        for seed in seeds:
            fwd[seed] = bwd[seed] = 1
        new_fwd = bytearray(NUM_NODES)
        new_bwd = bytearray(NUM_NODES)
        kernel.stage_pass(blocks, part, active, fwd, bwd, new_fwd, new_bwd)
        return bytes(new_fwd), bytes(new_bwd)

    s_marks, n_marks, t_scalar, t_kernel = _paired(
        lambda: one_pass(scalar_kernel), lambda: one_pass(numpy_kernel)
    )
    assert n_marks == s_marks, "numpy propagation diverged from scalar"
    return t_scalar, t_kernel


def _measure_merge(left, right):
    from repro.kernels.merge import _merge_two_chunked, _merge_two_scalar

    s_out, n_out, t_scalar, t_kernel = _paired(
        lambda: list(_merge_two_scalar(iter(left), iter(right))),
        lambda: list(_merge_two_chunked(iter(left), iter(right))),
    )
    assert n_out == s_out, "chunked merge diverged from scalar"
    return t_scalar, t_kernel


def _run_all():
    blocks = _edge_blocks()
    left, right = _sorted_runs()
    return {
        "propagate": _measure_propagation(blocks),
        "merge2": _measure_merge(left, right),
    }


def _mrps(count, seconds):
    """Millions of records per second."""
    return count / seconds / 1e6


def test_micro_kernels_beat_scalar(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    volumes = {"propagate": NUM_EDGES, "merge2": 2 * MERGE_RECORDS}

    lines = [
        "Kernel micro-benchmark — scalar vs kernel "
        f"({NUM_EDGES:,} edges propagated, {2 * MERGE_RECORDS:,} records "
        "merged)",
        f"{'kernel':<12} {'scalar':>12} {'kernel':>12} "
        f"{'scalar':>10} {'kernel':>10} {'ratio':>7}",
        f"{'':<12} {'s':>12} {'s':>12} "
        f"{'Mrec/s':>10} {'Mrec/s':>10} {'x':>7}",
        "-" * 68,
    ]
    for name, (t_scalar, t_kernel) in results.items():
        count = volumes[name]
        lines.append(
            f"{name:<12} {t_scalar:>12.3f} {t_kernel:>12.3f} "
            f"{_mrps(count, t_scalar):>10.2f} {_mrps(count, t_kernel):>10.2f} "
            f"{t_scalar / t_kernel:>6.2f}x"
        )
    text = "\n".join(lines) + "\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "micro_kernels.txt").write_text(text)
    print()
    print(text)

    total_scalar = sum(t for t, _ in results.values())
    total_kernel = sum(t for _, t in results.values())
    aggregate = total_scalar / total_kernel
    print(f"aggregate kernel ratio: {aggregate:.2f}x (gate {AGGREGATE_GATE}x)")
    assert aggregate >= AGGREGATE_GATE, (
        f"kernels only {aggregate:.2f}x scalar in aggregate "
        f"(gate {AGGREGATE_GATE}x)"
    )
    for name, (t_scalar, t_kernel) in results.items():
        assert t_scalar / t_kernel >= KERNEL_FLOOR, (
            f"{name}: kernel only {t_scalar / t_kernel:.2f}x scalar "
            f"(floor {KERNEL_FLOOR}x)"
        )
