"""Figure 9(e)/(f) — Large-SCC: cost vs average SCC size.

Paper: SCC size swept 4K..12K (scaled: 40..120) at fixed |V|, |E|; the
costs of both Ext variants "are not influenced much" — the key factors are
|V| and |E|, not how the strong connectivity is distributed.
"""

from conftest import assert_ext_wins_or_inf, report

from repro.bench import (
    BENCH_NODES,
    BLOCK_SIZE,
    family_graph,
    memory_for_ratio,
    run_algorithm,
    run_sweep,
    shuffled_edges,
)

# Paper: sizes 4K..12K at |V| = 100M.  Keep the same 2x span, scaled so
# the planted population stays a modest fraction of the bench graph.
SCC_SIZES = tuple(max(4, BENCH_NODES * f // 1000) for f in (2, 3, 4, 5, 6))


def _run_sweep():
    memory = memory_for_ratio(BENCH_NODES, 0.5)
    points = []
    for size in SCC_SIZES:
        graph = family_graph("large-scc", scc_size=size, seed=3)
        points.append((size, shuffled_edges(graph), BENCH_NODES, memory))
    sweep = run_sweep(
        "Fig 9(e)/(f) — Large-SCC: cost vs SCC size", "scc-size", points,
        ["Ext-SCC", "Ext-SCC-Op"], block_size=BLOCK_SIZE,
    )
    budget = max(4 * max(r.io_total for r in sweep.runs), 100_000)
    for size, edges, n, memory_ in points:
        sweep.runs.append(
            run_algorithm("DFS-SCC", edges, n, memory_, block_size=BLOCK_SIZE,
                          io_budget=budget, x=size)
        )
    return sweep


def test_fig9_vary_scc_size(benchmark):
    sweep = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    report(sweep, "fig9_vary_scc_size.txt")

    for name in ("Ext-SCC", "Ext-SCC-Op"):
        series = sweep.series(name)
        assert all(r.ok for r in series)
        costs = [r.io_total for r in series]
        # Paper: insensitive to SCC size at fixed |V|, |E|.
        assert max(costs) <= 2.0 * min(costs), (name, costs)
        assert all(r.io_random == 0 for r in series)

    assert_ext_wins_or_inf(sweep, "Ext-SCC-Op", "DFS-SCC")
